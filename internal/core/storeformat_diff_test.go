package core_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/finject"
	"repro/internal/report"
)

// TestFigureJSONStoreFormatEquivalence is the store-format half of the
// differential proof: the paper figures rendered through a JSON-lines
// result store and through a binary wire-format store — then once more
// from a fresh reopen of the binary store, so every cell is served from
// disk rather than executed — must serialize to byte-identical JSON
// documents. The store format is an encoding choice, never a result.
func TestFigureJSONStoreFormatEquivalence(t *testing.T) {
	dir := t.TempDir()
	render := func(t *testing.T, path, format string) []byte {
		t.Helper()
		st, err := campaign.OpenStore(path, format)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		opts := core.Options{
			Injections: 40, Seed: 43,
			Chips:      []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()},
			Checkpoint: finject.Checkpoint{},
			Scheduler:  campaign.New(campaign.Config{Store: st}),
		}
		var buf bytes.Buffer
		fig1, err := core.FigureRegisterFile(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.WriteFigureJSON(&buf, fig1, "fig1"); err != nil {
			t.Fatal(err)
		}
		fig3, err := core.FigureEPF(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := report.WriteEPFJSON(&buf, fig3, "fig3"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	jsonPath := filepath.Join(dir, "cells.jsonl")
	binPath := filepath.Join(dir, "cells.store")
	fromJSON := render(t, jsonPath, campaign.FormatJSON)
	fromBinary := render(t, binPath, campaign.FormatBinary)
	if !bytes.Equal(fromJSON, fromBinary) {
		t.Fatalf("figure JSON diverges between store formats:\njson store:\n%s\nbinary store:\n%s", fromJSON, fromBinary)
	}

	// Warm render: a fresh open of the binary store already holds every
	// cell, so this pass decodes results from disk instead of running
	// campaigns — and must still render the same bytes.
	warm := render(t, binPath, campaign.FormatAuto)
	if !bytes.Equal(fromJSON, warm) {
		t.Fatalf("figure JSON diverges when served from a reopened binary store:\nexecuted:\n%s\nfrom disk:\n%s", fromJSON, warm)
	}
}
