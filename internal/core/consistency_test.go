package core

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TestFIWithinACEBound encodes the methodology's structural relationship:
// in expectation, a fault manifests only if it lands in an ACE interval,
// so AVF-FI must not exceed AVF-ACE by more than the FI sampling margin.
// This is the invariant behind the paper's "ACE is conservative"
// reading, checked per benchmark on a mini chip with a fixed seed.
func TestFIWithinACEBound(t *testing.T) {
	const n = 250
	margin, err := stats.MarginOfError(n, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	for _, benchName := range []string{"transpose", "matrixMul", "reduction"} {
		b, err := workloads.ByName(benchName)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory} {
			cell, err := MeasureCell(chips.MiniNVIDIA(), b, st, Options{
				Injections: n, Seed: 17,
				Chips: []*chips.Chip{chips.MiniNVIDIA()},
			})
			if err != nil {
				t.Fatal(err)
			}
			if cell.AVFFI > cell.AVFACE+margin {
				t.Errorf("%s/%s: AVF-FI %.4f exceeds AVF-ACE %.4f beyond the ±%.4f sampling margin",
					benchName, st, cell.AVFFI, cell.AVFACE, margin)
			}
		}
	}
}

// TestAVFTracksOccupancyAcrossSuite encodes the paper's occupancy
// correlation quantitatively: across the suite, ACE AVF and occupancy
// must correlate strongly on the register file.
func TestAVFTracksOccupancyAcrossSuite(t *testing.T) {
	var avfs, occs []float64
	for _, b := range workloads.All() {
		cell, err := MeasureCell(chips.MiniNVIDIA(), b, gpu.RegisterFile, Options{
			Injections: 1, Seed: 1, // FI result unused; ACE drives the test
			Chips: []*chips.Chip{chips.MiniNVIDIA()},
		})
		if err != nil {
			t.Fatal(err)
		}
		avfs = append(avfs, cell.AVFACE)
		occs = append(occs, cell.Occupancy)
	}
	r, err := stats.PearsonCorrelation(occs, avfs)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.6 {
		t.Fatalf("occupancy-AVF correlation r=%.3f too weak (paper reports a strong correlation)", r)
	}
}
