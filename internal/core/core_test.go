package core

import (
	"strings"
	"testing"

	"repro/internal/chips"
	"repro/internal/experiment"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func miniOpts(n int) Options {
	return Options{
		Injections: n,
		Seed:       9,
		Chips:      []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()},
	}
}

func TestMeasureCell(t *testing.T) {
	b, err := workloads.ByName("reduction")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := MeasureCell(chips.MiniNVIDIA(), b, gpu.LocalMemory, miniOpts(80))
	if err != nil {
		t.Fatal(err)
	}
	if cell.Chip != "Mini NVIDIA" || cell.Benchmark != "reduction" {
		t.Fatalf("labels: %+v", cell)
	}
	if cell.AVFFI < 0 || cell.AVFFI > 1 || cell.AVFACE <= 0 || cell.AVFACE > 1 {
		t.Fatalf("AVFs out of range: %+v", cell)
	}
	if cell.AVFFILo > cell.AVFFI || cell.AVFFIHi < cell.AVFFI {
		t.Fatalf("interval excludes estimate: %+v", cell)
	}
	if cell.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	total := 0
	for _, c := range cell.Outcomes {
		total += c
	}
	if total != 80 {
		t.Fatalf("outcomes sum %d, want 80", total)
	}
}

func TestFigureRegisterFileGrid(t *testing.T) {
	benches := []*workloads.Benchmark{}
	for _, n := range []string{"vectoradd", "transpose"} {
		b, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		benches = append(benches, b)
	}
	opts := miniOpts(40)
	opts.Benchmarks = benches
	fig, err := FigureRegisterFile(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.BenchNames) != 2 || len(fig.ChipNames) != 2 {
		t.Fatalf("grid %dx%d", len(fig.BenchNames), len(fig.ChipNames))
	}
	if len(fig.Cells) != 2 || len(fig.Cells[0]) != 2 {
		t.Fatal("cells shape wrong")
	}
	if len(fig.Averages) != 2 {
		t.Fatal("averages missing")
	}
	// The average must lie within the per-benchmark extremes.
	for ci := range fig.ChipNames {
		lo, hi := 2.0, -1.0
		for bi := range fig.BenchNames {
			v := fig.Cells[bi][ci].AVFACE
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		avg := fig.Averages[ci].AVFACE
		if avg < lo-1e-12 || avg > hi+1e-12 {
			t.Fatalf("chip %d average %v outside [%v,%v]", ci, avg, lo, hi)
		}
	}
}

func TestFigureLocalMemoryUsesSubset(t *testing.T) {
	opts := miniOpts(30)
	fig, err := FigureLocalMemory(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.BenchNames) != 7 {
		t.Fatalf("local-memory figure has %d benchmarks, want 7", len(fig.BenchNames))
	}
	for _, n := range fig.BenchNames {
		if n == "gaussian" || n == "kmeans" || n == "vectoradd" {
			t.Fatalf("non-local benchmark %s in Fig. 2 set", n)
		}
	}
}

func TestFigureEPF(t *testing.T) {
	b, err := workloads.ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	opts := miniOpts(60)
	opts.Benchmarks = []*workloads.Benchmark{b}
	data, err := FigureEPF(opts)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range data.ChipNames {
		r := data.Rows[0][ci]
		if r.Seconds <= 0 || r.Cycles <= 0 {
			t.Fatalf("row %d: %+v", ci, r)
		}
		if r.EPF < 0 {
			t.Fatalf("negative EPF: %+v", r)
		}
		// EPF must respond to AVF: if any faults manifested the EPF is
		// finite and positive.
		if (r.RegAVF > 0 || r.LocalAVF > 0) && r.EPF == 0 {
			t.Fatalf("manifested faults but zero EPF: %+v", r)
		}
	}
}

func TestCellSeedDistinct(t *testing.T) {
	s1 := experiment.CellSeed(1, "a", "b", gpu.RegisterFile)
	s2 := experiment.CellSeed(1, "a", "b", gpu.LocalMemory)
	s3 := experiment.CellSeed(1, "a", "c", gpu.RegisterFile)
	s4 := experiment.CellSeed(2, "a", "b", gpu.RegisterFile)
	if s1 == s2 || s1 == s3 || s1 == s4 || s2 == s3 {
		t.Fatalf("seed collisions: %x %x %x %x", s1, s2, s3, s4)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(workloads.All())
	if o.Injections != 2000 || len(o.Chips) != 4 || len(o.Benchmarks) != 10 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.Confidence != 0.99 {
		t.Fatalf("confidence default %v", o.Confidence)
	}
	if !strings.Contains(o.Chips[0].Name, "Radeon") {
		t.Fatalf("chip order: %s first, want the Radeon (paper order)", o.Chips[0].Name)
	}
}
