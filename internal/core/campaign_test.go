package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/campaign"
	"repro/internal/chips"
	"repro/internal/workloads"
)

// TestFiguresShareScheduler is the orchestration acceptance test: running
// Fig. 1, Fig. 2 and then Fig. 3 against one shared scheduler must
// execute every unique (chip, benchmark, structure) campaign exactly
// once, and a warm-store rerun of Fig. 3 must perform zero new
// injections.
func TestFiguresShareScheduler(t *testing.T) {
	sched := campaign.New(campaign.Config{})
	opts := Options{
		Injections: 10,
		Seed:       9,
		Chips:      []*chips.Chip{chips.MiniNVIDIA(), chips.MiniAMD()},
		Scheduler:  sched,
	}
	nChips := len(opts.Chips)
	nAll := len(workloads.All())
	nLocal := len(workloads.LocalMemorySubset())

	if _, err := FigureRegisterFile(opts); err != nil {
		t.Fatal(err)
	}
	afterFig1 := sched.Stats()
	if want := int64(nAll * nChips); afterFig1.Runs != want {
		t.Fatalf("fig 1 executed %d campaigns, want %d", afterFig1.Runs, want)
	}
	if want := int64(nAll * nChips); afterFig1.GoldenRuns != want {
		t.Fatalf("fig 1 ran %d goldens, want one per (chip, benchmark) = %d", afterFig1.GoldenRuns, want)
	}

	if _, err := FigureLocalMemory(opts); err != nil {
		t.Fatal(err)
	}
	afterFig2 := sched.Stats()
	if want := int64((nAll + nLocal) * nChips); afterFig2.Runs != want {
		t.Fatalf("figs 1+2 executed %d campaigns, want %d", afterFig2.Runs, want)
	}
	// Fig. 2's local-memory campaigns reuse Fig. 1's golden runs.
	if afterFig2.GoldenRuns != afterFig1.GoldenRuns {
		t.Fatalf("fig 2 ran %d extra goldens", afterFig2.GoldenRuns-afterFig1.GoldenRuns)
	}

	epf, err := FigureEPF(opts)
	if err != nil {
		t.Fatal(err)
	}
	afterFig3 := sched.Stats()
	// Fig. 3 needs both structures for all benchmarks: the register-file
	// cells and the 7 local-memory cells already exist, so only the
	// local-memory campaigns of the non-local benchmarks are new.
	if want := int64(2 * nAll * nChips); afterFig3.Runs != want {
		t.Fatalf("figs 1+2+3 executed %d campaigns, want %d unique cells", afterFig3.Runs, want)
	}
	if afterFig3.Hits <= afterFig2.Hits {
		t.Fatal("fig 3 never hit the store despite overlapping figs 1 and 2")
	}

	// Warm rerun: zero new campaign executions, zero new goldens.
	epf2, err := FigureEPF(opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := sched.Stats()
	if warm.Runs != afterFig3.Runs {
		t.Fatalf("warm FigureEPF executed %d new campaigns", warm.Runs-afterFig3.Runs)
	}
	if warm.GoldenRuns != afterFig3.GoldenRuns {
		t.Fatalf("warm FigureEPF ran %d new goldens", warm.GoldenRuns-afterFig3.GoldenRuns)
	}
	// And it reproduces the same figure.
	for bi := range epf.Rows {
		for ci := range epf.Rows[bi] {
			if *epf.Rows[bi][ci] != *epf2.Rows[bi][ci] {
				t.Fatalf("warm rerun changed row %d/%d", bi, ci)
			}
		}
	}
}

// TestMeasureEPFReusesStore pins the satellite fix: measureEPF no longer
// re-runs campaigns privately but goes through the store, so repeating a
// cell is free.
func TestMeasureEPFReusesStore(t *testing.T) {
	sched := campaign.New(campaign.Config{})
	b, err := workloads.ByName("reduction")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Injections: 12,
		Seed:       4,
		Chips:      []*chips.Chip{chips.MiniNVIDIA()},
		Benchmarks: []*workloads.Benchmark{b},
		Scheduler:  sched,
	}
	if _, err := FigureEPF(opts); err != nil {
		t.Fatal(err)
	}
	first := sched.Stats()
	if first.Runs != 2 {
		t.Fatalf("one (chip, benchmark) EPF row executed %d campaigns, want 2", first.Runs)
	}
	if first.GoldenRuns != 1 {
		t.Fatalf("both structures should share one golden, ran %d", first.GoldenRuns)
	}
	if _, err := FigureEPF(opts); err != nil {
		t.Fatal(err)
	}
	if again := sched.Stats(); again.Runs != first.Runs {
		t.Fatalf("repeated EPF re-executed campaigns: %+v", again)
	}
}

func TestFigureCells(t *testing.T) {
	opts := Options{Injections: 10, Chips: []*chips.Chip{chips.MiniNVIDIA()}}
	counts := map[int]int{
		1: len(workloads.All()),
		2: len(workloads.LocalMemorySubset()),
		3: 2 * len(workloads.All()),
	}
	for fig, want := range counts {
		specs, err := FigureCells(fig, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != want {
			t.Fatalf("fig %d: %d cells, want %d", fig, len(specs), want)
		}
		for _, s := range specs {
			if s.Injections != 10 || s.Chip != "Mini NVIDIA" {
				t.Fatalf("fig %d spec not normalized: %+v", fig, s)
			}
		}
	}
	if _, err := FigureCells(4, opts); err == nil {
		t.Fatal("figure 4 accepted")
	}
}

func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{
		Injections: 10,
		Seed:       2,
		Chips:      []*chips.Chip{chips.MiniNVIDIA()},
	}
	if _, err := FigureRegisterFileContext(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
