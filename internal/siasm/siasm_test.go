package siasm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const testKernel = `
.kernel k
.lds 256
    s_load_dword s4, karg[0]
    s_load_dword s5, karg[1]
    s_mul_i32 s6, s12, 64
    v_add_i32 v2, v0, s6
    v_cmp_lt_i32 vcc, v2, s5
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    v_lshlrev_b32 v3, 2, v2
    v_add_i32 v3, v3, s4
    buffer_load_dword v4, v3, 0
    v_mul_f32 v5, v4, 2.0f
    ds_write_b32 v3, v5, 16
    s_barrier
    ds_read_b32 v6, v3, 16
    buffer_store_dword v6, v3, 0
done:
    s_mov_b64 exec, s[10:11]
    s_endpgm
`

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(testKernel)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "k" || p.LDSBytes != 256 {
		t.Fatalf("metadata: %q %d", p.Name, p.LDSBytes)
	}
	if p.NumVGPRs != 7 {
		t.Fatalf("NumVGPRs = %d, want 7", p.NumVGPRs)
	}
	if p.NumKArgs != 2 {
		t.Fatalf("NumKArgs = %d, want 2", p.NumKArgs)
	}
	if p.NumSGPRs < 12 {
		t.Fatalf("NumSGPRs = %d must cover the preloaded workgroup ids", p.NumSGPRs)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"missing kernel":  "s_endpgm\n",
		"no endpgm":       ".kernel k\ns_nop\n",
		"bad mnemonic":    ".kernel k\nv_frob_b32 v0, v1\ns_endpgm\n",
		"bad pair":        ".kernel k\ns_mov_b64 s[3:5], exec\ns_endpgm\n",
		"undefined label": ".kernel k\ns_branch off\ns_endpgm\n",
		"vgpr range":      ".kernel k\nv_mov_b32 v300, 0\ns_endpgm\n",
		"sgpr range":      ".kernel k\ns_mov_b32 s200, 0\ns_endpgm\n",
		"vcmp not vcc":    ".kernel k\nv_cmp_lt_i32 s0, v0, v1\ns_endpgm\n",
		"scalar f32 cmp":  ".kernel k\ns_cmp_lt_f32 s0, s1\ns_endpgm\n",
		"bad karg":        ".kernel k\ns_load_dword s0, s1\ns_endpgm\n",
		"imm dest 64":     ".kernel k\ns_mov_b64 5, exec\ns_endpgm\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected assembly error", name)
		}
	}
}

func TestCmpMnemonicVariants(t *testing.T) {
	p, err := Assemble(".kernel k\nv_cmp_lg_u32 vcc, v0, v1\ns_endpgm\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Cond != CondNE || p.Instrs[0].CmpTy != CmpU32 {
		t.Fatalf("lg/u32 parsed as %v/%v", p.Instrs[0].Cond, p.Instrs[0].CmpTy)
	}
}

func TestFloatLiteral(t *testing.T) {
	p, err := Assemble(".kernel k\nv_mov_b32 v1, -2.5f\ns_endpgm\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float32frombits(p.Instrs[0].Src[0].Imm); got != -2.5 {
		t.Fatalf("-2.5f parsed as %v", got)
	}
}

func TestMemOffsets(t *testing.T) {
	p, err := Assemble(".kernel k\nds_read_b32 v1, v2, 64\nbuffer_store_dword v1, v2, -4\ns_endpgm\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].MemOff != 64 || p.Instrs[1].MemOff != -4 {
		t.Fatalf("offsets %d %d", p.Instrs[0].MemOff, p.Instrs[1].MemOff)
	}
}

func TestWaitcntAccepted(t *testing.T) {
	// s_waitcnt carries count syntax on real SI; it must parse as a hint.
	if _, err := Assemble(".kernel k\ns_waitcnt vmcnt(0)\ns_endpgm\n"); err != nil {
		t.Fatal(err)
	}
}

func TestLabelVsRegisterPair(t *testing.T) {
	// The ':' inside s[10:11] must not be parsed as a label.
	p, err := Assemble(".kernel k\nl:\ns_mov_b64 s[10:11], exec\ns_branch l\ns_endpgm\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Target != 0 {
		t.Fatalf("branch target %d, want 0", p.Instrs[1].Target)
	}
}

func TestCondEval(t *testing.T) {
	if !CondLT.Eval(CmpI32, uint32(0xFFFFFFFF), 1) { // -1 < 1 signed
		t.Fatal("signed compare broken")
	}
	if CondLT.Eval(CmpU32, 0xFFFFFFFF, 1) { // max > 1 unsigned
		t.Fatal("unsigned compare broken")
	}
	nan := math.Float32bits(float32(math.NaN()))
	one := math.Float32bits(1)
	if CondEQ.Eval(CmpF32, nan, one) || CondLT.Eval(CmpF32, nan, one) {
		t.Fatal("NaN ordered compare must be false")
	}
	if !CondNE.Eval(CmpF32, nan, one) {
		t.Fatal("NaN NE must be true")
	}
}

func TestCondEvalProperty(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		for _, ty := range []CmpType{CmpI32, CmpU32} {
			if CondLT.Eval(ty, a, b) != !CondGE.Eval(ty, a, b) {
				return false
			}
			if CondEQ.Eval(ty, a, b) != !CondNE.Eval(ty, a, b) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleStable(t *testing.T) {
	p, err := Assemble(testKernel)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Disassemble()
	for i, in := range p.Instrs {
		if !strings.Contains(text, in.String()) {
			t.Fatalf("disassembly missing instruction %d: %s", i, in.String())
		}
	}
}

func TestOpClassCoverage(t *testing.T) {
	want := map[Opcode]Class{
		OpVRcpF: ClassSFU, OpVExpF: ClassSFU,
		OpDSRead: ClassLDS, OpDSWrite: ClassLDS,
		OpBufLoad: ClassGlobal, OpSLoadDW: ClassGlobal,
		OpSBranch: ClassControl, OpSBarrier: ClassBarrier,
		OpVAddF: ClassVector, OpSAdd: ClassScalar,
	}
	for op, cl := range want {
		if OpClass(op) != cl {
			t.Errorf("OpClass(%v) = %v, want %v", op, OpClass(op), cl)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("nope")
}
