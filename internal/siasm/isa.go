// Package siasm defines the AMD Southern-Islands-like ISA executed by the
// AMD compute-unit simulator (amdsim), together with its textual
// assembler. It is the reproduction's stand-in for the SI binary ISA that
// Multi2Sim 4.2 executes under the paper's SIFI tool.
//
// The ISA follows the SI split design: scalar instructions (s_*) execute
// once per 64-work-item wavefront against scalar registers s0..s103, the
// SCC bit, and the 64-bit EXEC and VCC masks; vector instructions (v_*)
// execute per active lane against vector registers v0..v255. Control
// divergence is compiler-managed through EXEC-mask save/restore sequences
// (v_cmp_* + s_and_saveexec_b64 + s_mov_b64 exec), exactly as SI binaries
// do — there is no hardware reconvergence stack.
//
// Launch ABI: v0/v1 hold the work-item local id (x, y); s12/s13 hold the
// workgroup id (x, y); kernel arguments are fetched with
// "s_load_dword sN, karg[i]".
package siasm

import (
	"fmt"
	"math"
	"strings"
)

// Limits of the register files.
const (
	// MaxVGPRs is the per-work-item vector register limit.
	MaxVGPRs = 256
	// MaxSGPRs is the per-wavefront scalar register limit.
	MaxSGPRs = 104
)

// Preloaded scalar registers (launch ABI).
const (
	// SRegWGIDX / SRegWGIDY hold the workgroup id at kernel entry.
	SRegWGIDX = 12
	SRegWGIDY = 13
)

// Opcode enumerates the instruction set.
type Opcode int

// Scalar (SOP), vector (VOP), data-share (DS), buffer (MUBUF) and
// program-control opcodes.
const (
	OpSNop    Opcode = iota
	OpSMov32         // s_mov_b32 sD, ssrc
	OpSAdd           // s_add_i32
	OpSSub           // s_sub_i32
	OpSMul           // s_mul_i32
	OpSAnd32         // s_and_b32
	OpSOr32          // s_or_b32
	OpSXor32         // s_xor_b32
	OpSLshl          // s_lshl_b32
	OpSLshr          // s_lshr_b32
	OpSMin           // s_min_i32
	OpSMax           // s_max_i32
	OpSCmp           // s_cmp_<cc>_i32|u32 -> SCC
	OpSLoadDW        // s_load_dword sD, karg[i]

	OpSMov64       // s_mov_b64 D64, S64
	OpSAnd64       // s_and_b64 D64, S64, S64
	OpSOr64        // s_or_b64
	OpSXor64       // s_xor_b64
	OpSAndn264     // s_andn2_b64 (D = S0 & ~S1)
	OpSNot64       // s_not_b64 D64, S64
	OpSAndSaveexec // s_and_saveexec_b64 D64, S64 (D=EXEC; EXEC&=S; SCC=EXEC!=0)
	OpSOrSaveexec  // s_or_saveexec_b64 D64, S64 (D=EXEC; EXEC|=S; SCC=EXEC!=0)

	OpSBranch  // s_branch label
	OpSCBranch // s_cbranch_<cond> label
	OpSBarrier // s_barrier
	OpSEndpgm  // s_endpgm
	OpSWaitcnt // s_waitcnt (timing hint; scoreboard handles ordering)

	OpVMov     // v_mov_b32 vD, src
	OpVAddI    // v_add_i32 vD, a, b
	OpVSubI    // v_sub_i32
	OpVMulI    // v_mul_i32 (low 32, signed)
	OpVMinI    // v_min_i32
	OpVMaxI    // v_max_i32
	OpVAnd     // v_and_b32
	OpVOr      // v_or_b32
	OpVXor     // v_xor_b32
	OpVLshlrev // v_lshlrev_b32 (D = S1 << S0)
	OpVLshrrev // v_lshrrev_b32 (D = S1 >> S0, logical)
	OpVAddF    // v_add_f32
	OpVSubF    // v_sub_f32
	OpVMulF    // v_mul_f32
	OpVMacF    // v_mac_f32 (D += S0*S1)
	OpVMinF    // v_min_f32
	OpVMaxF    // v_max_f32
	OpVRcpF    // v_rcp_f32
	OpVSqrtF   // v_sqrt_f32
	OpVExpF    // v_exp_f32 (2^x)
	OpVLogF    // v_log_f32 (log2 x)
	OpVCvtFI   // v_cvt_f32_i32
	OpVCvtIF   // v_cvt_i32_f32 (truncate)
	OpVCmp     // v_cmp_<cc>_<ty> vcc, a, b
	OpVCndmask // v_cndmask_b32 vD, s0, s1, vcc (D = vcc ? s1 : s0)

	OpDSRead  // ds_read_b32 vD, vAddr[, off]
	OpDSWrite // ds_write_b32 vAddr, vS[, off]
	OpBufLoad // buffer_load_dword vD, vAddr[, off]
	OpBufStor // buffer_store_dword vS, vAddr[, off]
)

// Class groups opcodes by execution resource for the timing model.
type Class int

// Timing classes.
const (
	ClassScalar Class = iota
	ClassVector
	ClassSFU
	ClassLDS
	ClassGlobal
	ClassControl
	ClassBarrier
)

// OpClass returns the timing class of an opcode.
func OpClass(o Opcode) Class {
	switch o {
	case OpVRcpF, OpVSqrtF, OpVExpF, OpVLogF:
		return ClassSFU
	case OpDSRead, OpDSWrite:
		return ClassLDS
	case OpBufLoad, OpBufStor, OpSLoadDW:
		return ClassGlobal
	case OpSBranch, OpSCBranch, OpSEndpgm, OpSWaitcnt, OpSNop:
		return ClassControl
	case OpSBarrier:
		return ClassBarrier
	case OpVMov, OpVAddI, OpVSubI, OpVMulI, OpVMinI, OpVMaxI,
		OpVAnd, OpVOr, OpVXor, OpVLshlrev, OpVLshrrev,
		OpVAddF, OpVSubF, OpVMulF, OpVMacF, OpVMinF, OpVMaxF,
		OpVCvtFI, OpVCvtIF, OpVCmp, OpVCndmask:
		return ClassVector
	default:
		return ClassScalar
	}
}

// Cond is a comparison condition.
type Cond int

// Comparison conditions (lg is the SI mnemonic for "not equal").
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the condition mnemonic fragment.
func (c Cond) String() string {
	if c >= 0 && int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", int(c))
}

// CmpType is the operand interpretation of a comparison.
type CmpType int

// Comparison operand types.
const (
	CmpI32 CmpType = iota
	CmpU32
	CmpF32
)

// Eval applies the condition to two 32-bit values under the type.
func (c Cond) Eval(ty CmpType, a, b uint32) bool {
	switch ty {
	case CmpF32:
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		if fa != fa || fb != fb {
			return c == CondNE
		}
		switch c {
		case CondEQ:
			return fa == fb
		case CondNE:
			return fa != fb
		case CondLT:
			return fa < fb
		case CondLE:
			return fa <= fb
		case CondGT:
			return fa > fb
		default:
			return fa >= fb
		}
	case CmpU32:
		switch c {
		case CondEQ:
			return a == b
		case CondNE:
			return a != b
		case CondLT:
			return a < b
		case CondLE:
			return a <= b
		case CondGT:
			return a > b
		default:
			return a >= b
		}
	default:
		ia, ib := int32(a), int32(b)
		switch c {
		case CondEQ:
			return ia == ib
		case CondNE:
			return ia != ib
		case CondLT:
			return ia < ib
		case CondLE:
			return ia <= ib
		case CondGT:
			return ia > ib
		default:
			return ia >= ib
		}
	}
}

// BranchCond enumerates s_cbranch_* variants.
type BranchCond int

// Conditional-branch conditions.
const (
	BrSCC0 BranchCond = iota
	BrSCC1
	BrVCCZ
	BrVCCNZ
	BrEXECZ
	BrEXECNZ
)

var brNames = [...]string{"scc0", "scc1", "vccz", "vccnz", "execz", "execnz"}

// String returns the branch-condition mnemonic fragment.
func (b BranchCond) String() string {
	if b >= 0 && int(b) < len(brNames) {
		return brNames[b]
	}
	return fmt.Sprintf("BranchCond(%d)", int(b))
}

// OperandKind discriminates operand encodings.
type OperandKind int

// Operand kinds.
const (
	OperandNone OperandKind = iota
	// OperandVReg is a vector register vN.
	OperandVReg
	// OperandSReg is a scalar register sN.
	OperandSReg
	// OperandSReg64 is an aligned scalar register pair s[N:N+1].
	OperandSReg64
	// OperandImm is a 32-bit literal.
	OperandImm
	// OperandVCC is the 64-bit vector condition code mask.
	OperandVCC
	// OperandEXEC is the 64-bit execution mask.
	OperandEXEC
)

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  uint8
	Imm  uint32
}

// V builds a VGPR operand.
func V(n int) Operand { return Operand{Kind: OperandVReg, Reg: uint8(n)} }

// S builds an SGPR operand.
func S(n int) Operand { return Operand{Kind: OperandSReg, Reg: uint8(n)} }

// Imm builds an integer literal operand.
func Imm(v uint32) Operand { return Operand{Kind: OperandImm, Imm: v} }

// ImmF builds a float literal operand.
func ImmF(v float32) Operand { return Operand{Kind: OperandImm, Imm: math.Float32bits(v)} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OperandVReg:
		return fmt.Sprintf("v%d", o.Reg)
	case OperandSReg:
		return fmt.Sprintf("s%d", o.Reg)
	case OperandSReg64:
		return fmt.Sprintf("s[%d:%d]", o.Reg, o.Reg+1)
	case OperandImm:
		return fmt.Sprintf("0x%x", o.Imm)
	case OperandVCC:
		return "vcc"
	case OperandEXEC:
		return "exec"
	default:
		return "?"
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op     Opcode
	Cond   Cond
	CmpTy  CmpType
	BrCond BranchCond
	Dst    Operand
	Src    [3]Operand
	// KArg is the kernel-argument word index for s_load_dword.
	KArg uint16
	// MemOff is the byte offset of DS/buffer accesses.
	MemOff int32
	// Target is the resolved branch destination index.
	Target int
	// Line is the 1-based source line for diagnostics.
	Line int
}

// Program is an assembled SI kernel.
type Program struct {
	Name string
	// Instrs is the instruction stream with resolved branch targets.
	Instrs []Instr
	// NumVGPRs is the per-work-item vector register demand.
	NumVGPRs int
	// NumSGPRs is the per-wavefront scalar register demand.
	NumSGPRs int
	// LDSBytes is the static local-data-share footprint per workgroup.
	LDSBytes int
	// NumKArgs is the number of kernel-argument words loaded.
	NumKArgs int
}

// KernelName implements gpu.Kernel.
func (p *Program) KernelName() string { return p.Name }

// VectorRegsPerThread implements gpu.Kernel.
func (p *Program) VectorRegsPerThread() int { return p.NumVGPRs }

// LocalBytesPerGroup implements gpu.Kernel.
func (p *Program) LocalBytesPerGroup() int { return p.LDSBytes }

// Disassemble renders the program, one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n.lds %d\n", p.Name, p.LDSBytes)
	for i := range p.Instrs {
		fmt.Fprintf(&b, "/*%04d*/ %s\n", i, p.Instrs[i].String())
	}
	return b.String()
}

// String disassembles one instruction (branch targets as indices).
func (in *Instr) String() string {
	switch in.Op {
	case OpSNop:
		return "s_nop"
	case OpSWaitcnt:
		return "s_waitcnt"
	case OpSBarrier:
		return "s_barrier"
	case OpSEndpgm:
		return "s_endpgm"
	case OpSBranch:
		return fmt.Sprintf("s_branch @%d", in.Target)
	case OpSCBranch:
		return fmt.Sprintf("s_cbranch_%s @%d", in.BrCond, in.Target)
	case OpSLoadDW:
		return fmt.Sprintf("s_load_dword %s, karg[%d]", in.Dst, in.KArg)
	case OpSCmp:
		ty := "i32"
		if in.CmpTy == CmpU32 {
			ty = "u32"
		}
		return fmt.Sprintf("s_cmp_%s_%s %s, %s", in.Cond, ty, in.Src[0], in.Src[1])
	case OpVCmp:
		ty := [...]string{"i32", "u32", "f32"}[in.CmpTy]
		return fmt.Sprintf("v_cmp_%s_%s vcc, %s, %s", in.Cond, ty, in.Src[0], in.Src[1])
	case OpVCndmask:
		return fmt.Sprintf("v_cndmask_b32 %s, %s, %s, vcc", in.Dst, in.Src[0], in.Src[1])
	case OpDSRead:
		return fmt.Sprintf("ds_read_b32 %s, %s, %d", in.Dst, in.Src[0], in.MemOff)
	case OpDSWrite:
		return fmt.Sprintf("ds_write_b32 %s, %s, %d", in.Src[0], in.Src[1], in.MemOff)
	case OpBufLoad:
		return fmt.Sprintf("buffer_load_dword %s, %s, %d", in.Dst, in.Src[0], in.MemOff)
	case OpBufStor:
		return fmt.Sprintf("buffer_store_dword %s, %s, %d", in.Src[0], in.Src[1], in.MemOff)
	default:
		name, ok := mnemonicOf[in.Op]
		if !ok {
			name = fmt.Sprintf("op%d", int(in.Op))
		}
		parts := []string{}
		if in.Dst.Kind != OperandNone {
			parts = append(parts, in.Dst.String())
		}
		for _, s := range in.Src {
			if s.Kind != OperandNone {
				parts = append(parts, s.String())
			}
		}
		return name + " " + strings.Join(parts, ", ")
	}
}
