package siasm

import (
	"fmt"
	"strconv"
	"strings"
)

// shape describes the operand pattern of a mnemonic.
type shape int

const (
	shape0        shape = iota // no operands
	shapeUnS                   // sdst, ssrc
	shapeBinS                  // sdst, ssrc, ssrc
	shapeUn64                  // d64, s64
	shapeBin64                 // d64, s64, s64
	shapeSaveexec              // d64, s64
	shapeBranch                // label
	shapeUnV                   // vdst, src
	shapeBinV                  // vdst, src, src
	shapeMacV                  // vdst (read-modify-write), src, src
	shapeCndmask               // vdst, src, src, vcc
	shapeDSRead                // vdst, vaddr[, off]
	shapeDSWrite               // vaddr, vsrc[, off]
	shapeBufLoad               // vdst, vaddr[, off]
	shapeBufStore              // vsrc, vaddr[, off]
)

type mnSpec struct {
	op    Opcode
	shape shape
}

var mnemonics = map[string]mnSpec{
	"s_nop":     {OpSNop, shape0},
	"s_waitcnt": {OpSWaitcnt, shape0},
	"s_barrier": {OpSBarrier, shape0},
	"s_endpgm":  {OpSEndpgm, shape0},

	"s_mov_b32":  {OpSMov32, shapeUnS},
	"s_add_i32":  {OpSAdd, shapeBinS},
	"s_sub_i32":  {OpSSub, shapeBinS},
	"s_mul_i32":  {OpSMul, shapeBinS},
	"s_and_b32":  {OpSAnd32, shapeBinS},
	"s_or_b32":   {OpSOr32, shapeBinS},
	"s_xor_b32":  {OpSXor32, shapeBinS},
	"s_lshl_b32": {OpSLshl, shapeBinS},
	"s_lshr_b32": {OpSLshr, shapeBinS},
	"s_min_i32":  {OpSMin, shapeBinS},
	"s_max_i32":  {OpSMax, shapeBinS},

	"s_mov_b64":          {OpSMov64, shapeUn64},
	"s_not_b64":          {OpSNot64, shapeUn64},
	"s_and_b64":          {OpSAnd64, shapeBin64},
	"s_or_b64":           {OpSOr64, shapeBin64},
	"s_xor_b64":          {OpSXor64, shapeBin64},
	"s_andn2_b64":        {OpSAndn264, shapeBin64},
	"s_and_saveexec_b64": {OpSAndSaveexec, shapeSaveexec},
	"s_or_saveexec_b64":  {OpSOrSaveexec, shapeSaveexec},

	"s_branch": {OpSBranch, shapeBranch},

	"v_mov_b32":     {OpVMov, shapeUnV},
	"v_rcp_f32":     {OpVRcpF, shapeUnV},
	"v_sqrt_f32":    {OpVSqrtF, shapeUnV},
	"v_exp_f32":     {OpVExpF, shapeUnV},
	"v_log_f32":     {OpVLogF, shapeUnV},
	"v_cvt_f32_i32": {OpVCvtFI, shapeUnV},
	"v_cvt_i32_f32": {OpVCvtIF, shapeUnV},

	"v_add_i32":     {OpVAddI, shapeBinV},
	"v_sub_i32":     {OpVSubI, shapeBinV},
	"v_mul_i32":     {OpVMulI, shapeBinV},
	"v_mul_lo_i32":  {OpVMulI, shapeBinV},
	"v_mul_lo_u32":  {OpVMulI, shapeBinV},
	"v_min_i32":     {OpVMinI, shapeBinV},
	"v_max_i32":     {OpVMaxI, shapeBinV},
	"v_and_b32":     {OpVAnd, shapeBinV},
	"v_or_b32":      {OpVOr, shapeBinV},
	"v_xor_b32":     {OpVXor, shapeBinV},
	"v_lshlrev_b32": {OpVLshlrev, shapeBinV},
	"v_lshrrev_b32": {OpVLshrrev, shapeBinV},
	"v_add_f32":     {OpVAddF, shapeBinV},
	"v_sub_f32":     {OpVSubF, shapeBinV},
	"v_mul_f32":     {OpVMulF, shapeBinV},
	"v_min_f32":     {OpVMinF, shapeBinV},
	"v_max_f32":     {OpVMaxF, shapeBinV},
	"v_mac_f32":     {OpVMacF, shapeMacV},

	"v_cndmask_b32": {OpVCndmask, shapeCndmask},

	"ds_read_b32":        {OpDSRead, shapeDSRead},
	"ds_write_b32":       {OpDSWrite, shapeDSWrite},
	"buffer_load_dword":  {OpBufLoad, shapeBufLoad},
	"buffer_store_dword": {OpBufStor, shapeBufStore},
}

// mnemonicOf is the reverse map used by the disassembler.
var mnemonicOf = func() map[Opcode]string {
	m := make(map[Opcode]string, len(mnemonics))
	for name, sp := range mnemonics {
		if _, dup := m[sp.op]; !dup {
			m[sp.op] = name
		}
	}
	return m
}()

// Assemble parses an SI-like kernel source into a Program. Grammar, line
// oriented: ".kernel <name>" (required first), ".lds <bytes>" (optional),
// "<label>:", and instructions with comma-separated operands. Comments
// start with ';' or '//'. Operands: vN, sN, s[N:N+1], vcc, exec, integer
// literals (decimal or 0x hex), float literals with an 'f' suffix, and
// karg[i] for s_load_dword.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	labels := make(map[string]int)
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup
	maxV, maxS := -1, -1
	maxK := -1
	sawKernel := false
	hasEnd := false

	note := func(o Operand) {
		switch o.Kind {
		case OperandVReg:
			if int(o.Reg) > maxV {
				maxV = int(o.Reg)
			}
		case OperandSReg:
			if int(o.Reg) > maxS {
				maxS = int(o.Reg)
			}
		case OperandSReg64:
			if int(o.Reg)+1 > maxS {
				maxS = int(o.Reg) + 1
			}
		}
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		ln := lineNo + 1

		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".kernel":
				if len(fields) != 2 {
					return nil, siErr(ln, ".kernel needs exactly one name")
				}
				if sawKernel {
					return nil, siErr(ln, "duplicate .kernel")
				}
				p.Name = fields[1]
				sawKernel = true
			case ".lds":
				if len(fields) != 2 {
					return nil, siErr(ln, ".lds needs exactly one byte count")
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, siErr(ln, "invalid .lds size %q", fields[1])
				}
				p.LDSBytes = n
			default:
				return nil, siErr(ln, "unknown directive %s", fields[0])
			}
			continue
		}

		// Labels.
		for {
			idx := strings.Index(line, ":")
			// Don't confuse s[10:11] with a label.
			if idx < 0 || strings.Contains(line[:idx], "[") {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !isIdent(name) {
				return nil, siErr(ln, "invalid label %q", name)
			}
			if _, dup := labels[name]; dup {
				return nil, siErr(ln, "duplicate label %q", name)
			}
			labels[name] = len(p.Instrs)
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if !sawKernel {
			return nil, siErr(ln, "instruction before .kernel")
		}

		mn := line
		ops := ""
		if sp := strings.IndexAny(line, " \t"); sp >= 0 {
			mn = line[:sp]
			ops = strings.TrimSpace(line[sp+1:])
		}
		mn = strings.ToLower(mn)
		args := splitOperands(ops)

		in := Instr{Line: ln}
		label, err := parseInstr(&in, mn, args, ln)
		if err != nil {
			return nil, err
		}
		if label != "" {
			fixups = append(fixups, fixup{len(p.Instrs), label, ln})
		}
		note(in.Dst)
		for _, o := range in.Src {
			note(o)
		}
		if in.Op == OpSLoadDW && int(in.KArg) > maxK {
			maxK = int(in.KArg)
		}
		if in.Op == OpSEndpgm {
			hasEnd = true
		}
		p.Instrs = append(p.Instrs, in)
	}

	if !sawKernel {
		return nil, fmt.Errorf("siasm: missing .kernel directive")
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("siasm: %s: empty program", p.Name)
	}
	if !hasEnd {
		return nil, fmt.Errorf("siasm: %s: program has no s_endpgm", p.Name)
	}
	for _, f := range fixups {
		if n, ok := branchIndex(f.label); ok {
			if n > len(p.Instrs) {
				return nil, siErr(f.line, "branch target @%d beyond program end", n)
			}
			p.Instrs[f.instr].Target = n
			continue
		}
		tgt, ok := labels[f.label]
		if !ok {
			return nil, siErr(f.line, "undefined label %q", f.label)
		}
		p.Instrs[f.instr].Target = tgt
	}
	if maxV+1 > MaxVGPRs {
		return nil, fmt.Errorf("siasm: %s: uses %d VGPRs, max %d", p.Name, maxV+1, MaxVGPRs)
	}
	if maxS+1 > MaxSGPRs {
		return nil, fmt.Errorf("siasm: %s: uses %d SGPRs, max %d", p.Name, maxS+1, MaxSGPRs)
	}
	// v0 (local id) and s12/s13 (workgroup id) are always materialized.
	p.NumVGPRs = maxIntSI(maxV+1, 1)
	p.NumSGPRs = maxIntSI(maxS+1, SRegWGIDY+1)
	p.NumKArgs = maxK + 1
	return p, nil
}

// MustAssemble is Assemble that panics on error; for static kernel tables.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func maxIntSI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func siErr(line int, format string, args ...any) error {
	return fmt.Errorf("siasm: line %d: %s", line, fmt.Sprintf(format, args...))
}

// stripComment removes ';', "//" and "/* ... */" comments (the latter
// covers the disassembler's /*0042*/ index prefixes; an unterminated /*
// comments out the rest of the line).
func stripComment(s string) string {
	for {
		i := strings.Index(s, "/*")
		if i < 0 {
			break
		}
		j := strings.Index(s[i+2:], "*/")
		if j < 0 {
			s = s[:i]
			break
		}
		s = s[:i] + " " + s[i+2+j+2:]
	}
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

// branchIndex parses the disassembler's "@N" absolute branch-target
// form, so disassembled programs reassemble without labels.
func branchIndex(s string) (int, bool) {
	rest, ok := strings.CutPrefix(s, "@")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	return append(out, strings.TrimSpace(s[start:]))
}

// parseOperand parses any operand form except karg[i].
func parseOperand(s string) (Operand, error) {
	low := strings.ToLower(s)
	switch low {
	case "":
		return Operand{}, fmt.Errorf("empty operand")
	case "vcc":
		return Operand{Kind: OperandVCC}, nil
	case "exec":
		return Operand{Kind: OperandEXEC}, nil
	}
	// s[N:M] pair.
	if strings.HasPrefix(low, "s[") && strings.HasSuffix(low, "]") {
		inner := low[2 : len(low)-1]
		parts := strings.Split(inner, ":")
		if len(parts) != 2 {
			return Operand{}, fmt.Errorf("bad register pair %q", s)
		}
		a, err1 := strconv.Atoi(parts[0])
		b, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || b != a+1 || a < 0 || b >= MaxSGPRs {
			return Operand{}, fmt.Errorf("bad register pair %q", s)
		}
		return Operand{Kind: OperandSReg64, Reg: uint8(a)}, nil
	}
	// vN / sN.
	if len(low) >= 2 && (low[0] == 'v' || low[0] == 's') && low[1] >= '0' && low[1] <= '9' {
		n, err := strconv.Atoi(low[1:])
		if err != nil {
			return Operand{}, fmt.Errorf("bad register %q", s)
		}
		if low[0] == 'v' {
			if n < 0 || n >= MaxVGPRs {
				return Operand{}, fmt.Errorf("VGPR %q out of range", s)
			}
			return V(n), nil
		}
		if n < 0 || n >= MaxSGPRs {
			return Operand{}, fmt.Errorf("SGPR %q out of range", s)
		}
		return S(n), nil
	}
	// Float literal with 'f' suffix.
	if (strings.HasSuffix(s, "f") || strings.HasSuffix(s, "F")) && !strings.HasPrefix(low, "0x") {
		v, err := strconv.ParseFloat(s[:len(s)-1], 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad float literal %q", s)
		}
		return ImmF(float32(v)), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return Operand{}, fmt.Errorf("literal %q out of 32-bit range", s)
	}
	return Imm(uint32(v)), nil
}

func parseVReg(s string) (Operand, error) {
	o, err := parseOperand(s)
	if err != nil {
		return o, err
	}
	if o.Kind != OperandVReg {
		return o, fmt.Errorf("operand %q must be a VGPR", s)
	}
	return o, nil
}

func parse64(s string) (Operand, error) {
	o, err := parseOperand(s)
	if err != nil {
		return o, err
	}
	switch o.Kind {
	case OperandSReg64, OperandVCC, OperandEXEC:
		return o, nil
	case OperandImm:
		return o, nil // sign/zero-extended 64-bit literal
	default:
		return o, fmt.Errorf("operand %q is not a 64-bit scalar", s)
	}
}

// parseCmpMnemonic decodes "s_cmp_<cc>_<ty>" / "v_cmp_<cc>_<ty>".
func parseCmpMnemonic(mn string) (Cond, CmpType, bool) {
	rest, ok := strings.CutPrefix(mn, "s_cmp_")
	if !ok {
		rest, ok = strings.CutPrefix(mn, "v_cmp_")
		if !ok {
			return 0, 0, false
		}
	}
	parts := strings.SplitN(rest, "_", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	var cond Cond
	switch parts[0] {
	case "eq":
		cond = CondEQ
	case "ne", "lg":
		cond = CondNE
	case "lt":
		cond = CondLT
	case "le":
		cond = CondLE
	case "gt":
		cond = CondGT
	case "ge":
		cond = CondGE
	default:
		return 0, 0, false
	}
	var ty CmpType
	switch parts[1] {
	case "i32":
		ty = CmpI32
	case "u32":
		ty = CmpU32
	case "f32":
		ty = CmpF32
	default:
		return 0, 0, false
	}
	return cond, ty, true
}

func parseInstr(in *Instr, mn string, args []string, ln int) (string, error) {
	need := func(lo, hi int) error {
		if len(args) < lo || len(args) > hi {
			return siErr(ln, "%s expects %d-%d operands, got %d", mn, lo, hi, len(args))
		}
		return nil
	}
	memOff := func(i int) error {
		if len(args) <= i {
			return nil
		}
		v, err := strconv.ParseInt(args[i], 0, 32)
		if err != nil {
			return siErr(ln, "%s: bad offset %q", mn, args[i])
		}
		in.MemOff = int32(v)
		return nil
	}

	// s_cbranch_* family.
	if rest, ok := strings.CutPrefix(mn, "s_cbranch_"); ok {
		if err := need(1, 1); err != nil {
			return "", err
		}
		for i, n := range brNames {
			if rest == n {
				in.Op = OpSCBranch
				in.BrCond = BranchCond(i)
				if _, num := branchIndex(args[0]); !isIdent(args[0]) && !num {
					return "", siErr(ln, "%s: bad label %q", mn, args[0])
				}
				return args[0], nil
			}
		}
		return "", siErr(ln, "unknown branch condition in %q", mn)
	}

	// Comparison families.
	if cond, ty, ok := parseCmpMnemonic(mn); ok {
		if strings.HasPrefix(mn, "s_cmp_") {
			if ty == CmpF32 {
				return "", siErr(ln, "%s: scalar float compare unsupported", mn)
			}
			if err := need(2, 2); err != nil {
				return "", err
			}
			a, err := parseOperand(args[0])
			if err != nil {
				return "", siErr(ln, "%s: %v", mn, err)
			}
			b, err := parseOperand(args[1])
			if err != nil {
				return "", siErr(ln, "%s: %v", mn, err)
			}
			in.Op, in.Cond, in.CmpTy = OpSCmp, cond, ty
			in.Src[0], in.Src[1] = a, b
			return "", nil
		}
		// v_cmp: first operand must be vcc.
		if err := need(3, 3); err != nil {
			return "", err
		}
		if strings.ToLower(args[0]) != "vcc" {
			return "", siErr(ln, "%s: destination must be vcc", mn)
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		b, err := parseOperand(args[2])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Op, in.Cond, in.CmpTy = OpVCmp, cond, ty
		in.Src[0], in.Src[1] = a, b
		return "", nil
	}

	// s_load_dword sN, karg[i].
	if mn == "s_load_dword" {
		if err := need(2, 2); err != nil {
			return "", err
		}
		d, err := parseOperand(args[0])
		if err != nil || d.Kind != OperandSReg {
			return "", siErr(ln, "s_load_dword: destination must be an SGPR")
		}
		low := strings.ToLower(args[1])
		if !strings.HasPrefix(low, "karg[") || !strings.HasSuffix(low, "]") {
			return "", siErr(ln, "s_load_dword: source must be karg[i], got %q", args[1])
		}
		k, err := strconv.Atoi(low[5 : len(low)-1])
		if err != nil || k < 0 || k > 0xffff {
			return "", siErr(ln, "s_load_dword: bad kernarg index %q", args[1])
		}
		in.Op = OpSLoadDW
		in.Dst = d
		in.KArg = uint16(k)
		return "", nil
	}

	sp, ok := mnemonics[mn]
	if !ok {
		return "", siErr(ln, "unknown mnemonic %q", mn)
	}
	in.Op = sp.op

	switch sp.shape {
	case shape0:
		// s_waitcnt may carry count operands; they are timing hints only.
		if mn != "s_waitcnt" && mn != "s_nop" {
			if err := need(0, 0); err != nil {
				return "", err
			}
		}
	case shapeBranch:
		if err := need(1, 1); err != nil {
			return "", err
		}
		if _, num := branchIndex(args[0]); !isIdent(args[0]) && !num {
			return "", siErr(ln, "%s: bad label %q", mn, args[0])
		}
		return args[0], nil
	case shapeUnS:
		if err := need(2, 2); err != nil {
			return "", err
		}
		d, err := parseOperand(args[0])
		if err != nil || (d.Kind != OperandSReg) {
			return "", siErr(ln, "%s: destination must be an SGPR", mn)
		}
		s0, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0] = d, s0
	case shapeBinS:
		if err := need(3, 3); err != nil {
			return "", err
		}
		d, err := parseOperand(args[0])
		if err != nil || d.Kind != OperandSReg {
			return "", siErr(ln, "%s: destination must be an SGPR", mn)
		}
		s0, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s1, err := parseOperand(args[2])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0], in.Src[1] = d, s0, s1
	case shapeUn64, shapeSaveexec:
		if err := need(2, 2); err != nil {
			return "", err
		}
		d, err := parse64(args[0])
		if err != nil || d.Kind == OperandImm {
			return "", siErr(ln, "%s: destination must be a 64-bit scalar", mn)
		}
		s0, err := parse64(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0] = d, s0
	case shapeBin64:
		if err := need(3, 3); err != nil {
			return "", err
		}
		d, err := parse64(args[0])
		if err != nil || d.Kind == OperandImm {
			return "", siErr(ln, "%s: destination must be a 64-bit scalar", mn)
		}
		s0, err := parse64(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s1, err := parse64(args[2])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0], in.Src[1] = d, s0, s1
	case shapeUnV:
		if err := need(2, 2); err != nil {
			return "", err
		}
		d, err := parseVReg(args[0])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s0, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0] = d, s0
	case shapeBinV, shapeMacV:
		if err := need(3, 3); err != nil {
			return "", err
		}
		d, err := parseVReg(args[0])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s0, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s1, err := parseOperand(args[2])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0], in.Src[1] = d, s0, s1
	case shapeCndmask:
		if err := need(4, 4); err != nil {
			return "", err
		}
		if strings.ToLower(args[3]) != "vcc" {
			return "", siErr(ln, "%s: selector must be vcc", mn)
		}
		d, err := parseVReg(args[0])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s0, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		s1, err := parseOperand(args[2])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Dst, in.Src[0], in.Src[1] = d, s0, s1
	case shapeDSRead, shapeBufLoad:
		if err := need(2, 3); err != nil {
			return "", err
		}
		d, err := parseVReg(args[0])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		a, err := parseVReg(args[1])
		if err != nil {
			return "", siErr(ln, "%s: address %v", mn, err)
		}
		in.Dst, in.Src[0] = d, a
		if err := memOff(2); err != nil {
			return "", err
		}
	case shapeDSWrite, shapeBufStore:
		if err := need(2, 3); err != nil {
			return "", err
		}
		// ds_write_b32 vaddr, vsrc / buffer_store_dword vsrc, vaddr.
		a0, err := parseVReg(args[0])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		a1, err := parseOperand(args[1])
		if err != nil {
			return "", siErr(ln, "%s: %v", mn, err)
		}
		in.Src[0], in.Src[1] = a0, a1
		if err := memOff(2); err != nil {
			return "", err
		}
	}
	return "", nil
}
