package siasm_test

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/siasm"
	"repro/internal/workloads"
)

// FuzzAssemble throws arbitrary sources at the SI-dialect assembler.
// The invariants: Assemble never panics, and any program it accepts
// survives a disassemble/reassemble round-trip with stable output. The
// seed corpus is the real kernels of the paper's 10-benchmark suite.
// (The test lives in package siasm_test because workloads imports
// siasm.)
func FuzzAssemble(f *testing.F) {
	for _, src := range workloads.KernelSources(gpu.AMD) {
		f.Add(src)
	}
	f.Add(".kernel k\ns_endpgm\n")
	f.Add(".kernel k\n.lds 128\nloop:\ns_cbranch_execz loop\ns_endpgm\n")
	f.Add(".kernel k\n    s_load_dword s4, karg[0]\n    v_add_f32 v1, v0, 2.5\n    buffer_store_dword v1, v0, 0\n    s_endpgm\n")
	f.Add(".kernel k\n    s_and_saveexec_b64 s[10:11], vcc\n    s_mov_b64 exec, s[10:11]\n    s_endpgm ; comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := siasm.Assemble(src)
		if err != nil {
			return
		}
		text := p.Disassemble()
		p2, err := siasm.Assemble(text)
		if err != nil {
			t.Fatalf("accepted program's disassembly does not reassemble: %v\ninput:\n%s\ndisassembly:\n%s", err, src, text)
		}
		if got := p2.Disassemble(); got != text {
			t.Fatalf("round-trip unstable:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
	})
}
