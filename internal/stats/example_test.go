package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// The paper's footnote 4: 2,000 injections give a 2.88% worst-case error
// margin at 99% confidence.
func ExampleMarginOfError() {
	m, err := stats.MarginOfError(2000, 0, 0.99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("±%.2f%%\n", 100*m)
	// Output: ±2.88%
}

// Planning a campaign: how many injections buy a 5% margin at 95%
// confidence over an effectively infinite fault population?
func ExampleSampleSize() {
	n, err := stats.SampleSize(0, 0.05, 0.95)
	if err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output: 385
}

// A campaign observed 110 failures in 2,000 injections; report the AVF
// with its Wilson interval.
func ExampleProportion_Interval() {
	p := stats.Proportion{Successes: 110, Trials: 2000}
	lo, hi, err := p.Interval(0.99)
	if err != nil {
		panic(err)
	}
	fmt.Printf("AVF %.2f%% [%.2f%%, %.2f%%]\n", 100*p.Value(), 100*lo, 100*hi)
	// Output: AVF 5.50% [4.33%, 6.97%]
}
