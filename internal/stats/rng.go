// Package stats provides the deterministic pseudo-random number generation
// and the statistical machinery used by the fault-injection campaigns:
// splitmix64/xoshiro-style generators with derivable sub-streams, sample
// mean and proportion confidence intervals, and the statistical
// fault-injection sample-size planner from Leveugle et al. that the paper
// uses to justify 2,000 injections per structure (2.88% error margin at
// 99% confidence).
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is intentionally not crypto-grade: campaigns must be
// reproducible from a single published seed, and sub-streams must be
// derivable so that injection #i of a campaign is independent of how many
// worker goroutines execute the campaign.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new independent generator for the given stream index.
// It is used to give every injection experiment its own reproducible
// stream regardless of scheduling order.
func (r *RNG) Derive(stream uint64) *RNG {
	// Mix the base state with the stream id through one splitmix64 step
	// so neighbouring streams do not correlate.
	return NewRNG(mix64(r.state ^ mix64(stream+0x9e3779b97f4a7c15)))
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's method
// with rejection to remove modulo bias. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
