package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperSampleSizeFootnote(t *testing.T) {
	// The paper: "2,000 fault injections per hardware structure, which
	// statistically provides 2.88% error margin for 99% confidence".
	m, err := MarginOfError(2000, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Round(m*1e4) / 1e2; got != 2.88 {
		t.Fatalf("margin for n=2000 @99%% = %v%%, want 2.88%%", got)
	}
	// And inversely the planner should ask for ~2,000 injections.
	n, err := SampleSize(0, 0.0288, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1990 || n > 2010 {
		t.Fatalf("sample size for 2.88%% @99%% = %d, want ~2000", n)
	}
}

func TestZQuantiles(t *testing.T) {
	cases := []struct {
		conf, want float64
	}{{0.90, Z90}, {0.95, Z95}, {0.99, Z99}}
	for _, c := range cases {
		z, err := ZForConfidence(c.conf)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(z-c.want) > 1e-9 {
			t.Fatalf("z(%v) = %v, want %v", c.conf, z, c.want)
		}
	}
	if _, err := ZForConfidence(0); err == nil {
		t.Fatal("expected error for confidence 0")
	}
	if _, err := ZForConfidence(1); err == nil {
		t.Fatal("expected error for confidence 1")
	}
}

func TestFinitePopulationCorrection(t *testing.T) {
	inf, err := MarginOfError(500, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := MarginOfError(500, 1000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if fin >= inf {
		t.Fatalf("finite-population margin %v should be below infinite %v", fin, inf)
	}
	n, err := SampleSize(1000, 0.0288, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 1000 {
		t.Fatalf("finite-population sample %d should be below the population", n)
	}
}

func TestRNGDeterminismAndStreams(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	s1 := NewRNG(1).Derive(7)
	s2 := NewRNG(1).Derive(8)
	same := true
	for i := 0; i < 16; i++ {
		if s1.Uint64() != s2.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("derived streams 7 and 8 are identical")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(99)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Coarse chi-square-ish check over 8 buckets.
	r := NewRNG(5)
	const buckets = 8
	const n = 80000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(6)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	if err := quick.Check(func(s uint16, tr uint16) bool {
		trials := int(tr%1000) + 1
		succ := int(s) % (trials + 1)
		p := Proportion{Successes: succ, Trials: trials}
		lo, hi, err := p.Interval(0.99)
		if err != nil {
			return false
		}
		v := p.Value()
		return lo >= 0 && hi <= 1 && lo <= v && v <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalNarrowsWithN(t *testing.T) {
	small := Proportion{Successes: 5, Trials: 50}
	big := Proportion{Successes: 100, Trials: 1000}
	slo, shi, _ := small.Interval(0.99)
	blo, bhi, _ := big.Interval(0.99)
	if bhi-blo >= shi-slo {
		t.Fatalf("interval did not narrow: small %v, big %v", shi-slo, bhi-blo)
	}
}

func TestMeanWelford(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 || m.Value() != 5 {
		t.Fatalf("mean = %v (n=%d), want 5 (8)", m.Value(), m.N())
	}
	if math.Abs(m.StdDev()-2.138089935299395) > 1e-12 {
		t.Fatalf("stddev = %v", m.StdDev())
	}
	lo, hi, err := m.Interval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 5 || hi <= 5 {
		t.Fatalf("interval [%v,%v] should bracket the mean", lo, hi)
	}
}

func TestPearsonCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := PearsonCorrelation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation gave r=%v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = PearsonCorrelation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation gave r=%v", r)
	}
	if _, err := PearsonCorrelation(xs, ys[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PearsonCorrelation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("zero-variance series accepted")
	}
}

func TestNormQuantileAccuracy(t *testing.T) {
	// Spot values from standard tables.
	cases := map[float64]float64{
		0.975: 1.959963984540054,
		0.995: 2.5758293035489004,
		0.5:   0,
		0.9:   1.2815515655446004,
	}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("normQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}
