package stats

import (
	"errors"
	"fmt"
	"math"
)

// Common two-sided confidence levels and the corresponding standard-normal
// quantiles z_{1-alpha/2}.
const (
	Z90 = 1.6448536269514722
	Z95 = 1.959963984540054
	Z99 = 2.5758293035489004
)

// ZForConfidence returns the two-sided standard-normal quantile for a
// confidence level in (0,1), e.g. 0.99 -> 2.5758.
func ZForConfidence(confidence float64) (float64, error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	return normQuantile(0.5 + confidence/2), nil
}

// normQuantile computes the standard normal quantile via the
// Beasley-Springer-Moro / Acklam rational approximation (abs err < 1.2e-9),
// refined with one Halley step using the complementary error function.
func normQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// SampleSize returns the number of statistical fault-injection experiments
// needed for the requested error margin at the requested confidence level,
// for a population of N possible (bit, cycle) fault sites, using the
// finite-population formula of Leveugle et al. (DATE 2009) that GUFI/SIFI
// use:
//
//	n = N / (1 + e^2 * (N-1) / (z^2 * p*(1-p)))
//
// with the worst-case p = 0.5. population <= 0 means an infinite
// population.
func SampleSize(population int64, margin, confidence float64) (int, error) {
	if margin <= 0 || margin >= 1 {
		return 0, fmt.Errorf("stats: margin %v outside (0,1)", margin)
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	const p = 0.5
	n0 := z * z * p * (1 - p) / (margin * margin)
	if population <= 0 {
		return int(math.Ceil(n0)), nil
	}
	N := float64(population)
	n := N / (1 + margin*margin*(N-1)/(z*z*p*(1-p)))
	return int(math.Ceil(n)), nil
}

// MarginOfError returns the worst-case (p = 0.5) two-sided error margin for
// n fault-injection experiments drawn from a population of N fault sites at
// the given confidence. This reproduces the paper's footnote: 2,000
// injections give a 2.88% margin at 99% confidence for large N.
func MarginOfError(n int, population int64, confidence float64) (float64, error) {
	if n <= 0 {
		return 0, errors.New("stats: non-positive sample size")
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, err
	}
	const p = 0.5
	e := z * math.Sqrt(p*(1-p)/float64(n))
	if population > 0 && int64(n) < population {
		fpc := math.Sqrt(float64(population-int64(n)) / float64(population-1))
		e *= fpc
	}
	return e, nil
}

// Proportion is an observed binomial proportion with its sample size,
// e.g. the fraction of non-masked fault injections.
type Proportion struct {
	Successes int
	Trials    int
}

// Value returns the point estimate, or 0 for an empty sample.
func (p Proportion) Value() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Interval returns the Wilson score interval at the given confidence.
// Wilson is preferred over the normal approximation because campaign AVFs
// can sit very close to 0 or 1.
func (p Proportion) Interval(confidence float64) (lo, hi float64, err error) {
	if p.Trials == 0 {
		return 0, 0, errors.New("stats: empty sample")
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, 0, err
	}
	n := float64(p.Trials)
	phat := p.Value()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	// The Wilson interval contains the point estimate by construction,
	// but at phat = 0 or 1 the float evaluation of center ± half can
	// land one ulp inside it; clamp so callers can rely on lo <= phat <= hi.
	if lo > phat {
		lo = phat
	}
	if hi < phat {
		hi = phat
	}
	return lo, hi, nil
}

// HalfWidth returns half the width of the Wilson score interval at the
// given confidence — the quantity an adaptive fault-injection campaign
// drives below its requested error margin before stopping.
func (p Proportion) HalfWidth(confidence float64) (float64, error) {
	lo, hi, err := p.Interval(confidence)
	if err != nil {
		return 0, err
	}
	return (hi - lo) / 2, nil
}

// Mean accumulates a running sample mean and variance (Welford).
type Mean struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() int { return m.n }

// Value returns the sample mean.
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the unbiased sample variance.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Interval returns a normal-approximation confidence interval for the mean.
func (m *Mean) Interval(confidence float64) (lo, hi float64, err error) {
	if m.n == 0 {
		return 0, 0, errors.New("stats: empty sample")
	}
	z, err := ZForConfidence(confidence)
	if err != nil {
		return 0, 0, err
	}
	half := z * m.StdDev() / math.Sqrt(float64(m.n))
	return m.mean - half, m.mean + half, nil
}

// PearsonCorrelation returns the linear correlation coefficient of two
// equal-length series. It is used to quantify the paper's AVF-vs-occupancy
// correlation claim. Returns an error on mismatched or too-short input.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least 2 points")
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	n := float64(len(xs))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
