package chips

import (
	"testing"

	"repro/internal/gpu"
)

func TestEvaluatedMatchesPaper(t *testing.T) {
	evs := Evaluated()
	if len(evs) != 4 {
		t.Fatalf("%d chips, want the paper's 4", len(evs))
	}
	wantOrder := []string{"HD Radeon 7970", "Quadro FX 5600", "Quadro FX 5800", "GeForce GTX 480"}
	for i, c := range evs {
		if c.Name != wantOrder[i] {
			t.Fatalf("chip %d is %s, want %s (paper figure order)", i, c.Name, wantOrder[i])
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestArchitectureParameters(t *testing.T) {
	g80 := QuadroFX5600()
	gt200 := QuadroFX5800()
	fermi := GeForceGTX480()
	tahiti := HDRadeon7970()

	// Published register file growth G80 -> GT200 -> Fermi.
	if !(g80.RegsPerUnit < gt200.RegsPerUnit && gt200.RegsPerUnit < fermi.RegsPerUnit) {
		t.Fatal("register file sizes must grow across NVIDIA generations")
	}
	// Fermi's 48KB shared memory vs 16KB before.
	if fermi.LocalBytesPerUnit != 48<<10 || g80.LocalBytesPerUnit != 16<<10 {
		t.Fatal("shared memory sizes wrong")
	}
	// SI wavefronts are 64 wide; NVIDIA warps 32.
	if tahiti.WarpWidth != 64 || fermi.WarpWidth != 32 {
		t.Fatal("warp widths wrong")
	}
	if tahiti.Vendor != gpu.AMD || fermi.Vendor != gpu.NVIDIA {
		t.Fatal("vendors wrong")
	}
	// Whole-chip structure sizes used for FIT: Tahiti VGPR = 8 MB.
	if got := tahiti.StructBits(gpu.RegisterFile); got != 32*65536*32 {
		t.Fatalf("Tahiti VGPR bits = %d", got)
	}
	if got := fermi.StructBits(gpu.LocalMemory); got != 15*48*1024*8 {
		t.Fatalf("GTX480 shared bits = %d", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := MiniNVIDIA()
	bad := []func(c *Chip){
		func(c *Chip) { c.Name = "" },
		func(c *Chip) { c.Units = 0 },
		func(c *Chip) { c.ClockGHz = 0 },
		func(c *Chip) { c.RegsPerUnit = -1 },
		func(c *Chip) { c.WarpWidth = 16 },
		func(c *Chip) { c.IssueWidth = 0 },
		func(c *Chip) { c.ALULat = 0 },
		func(c *Chip) { c.GlobalMemBytes = 0 },
		func(c *Chip) { c.MaxWarpsPerUnit = 0 },
	}
	for i, mutate := range bad {
		c := *good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("GeForce GTX 480")
	if err != nil || c.Arch != "Fermi" {
		t.Fatalf("ByName: %v %v", c, err)
	}
	if _, err := ByName("GeForce 9999"); err == nil {
		t.Fatal("unknown chip accepted")
	}
}
