// Package chips catalogues the microarchitectural configurations of the
// four GPUs evaluated in the paper (plus a few reduced configurations used
// by tests and ablation sweeps). The numbers are the published chip
// parameters; the timing knobs (issue width/period, latencies) are the
// coarse pipeline model shared by nvsim and amdsim.
package chips

import (
	"fmt"

	"repro/internal/gpu"
)

// SchedulerPolicy selects the warp/wavefront issue arbitration.
type SchedulerPolicy int

// Scheduler policies.
const (
	// SchedRR is loose round-robin: the issue pointer advances past each
	// warp that issues, giving all ready warps equal service.
	SchedRR SchedulerPolicy = iota
	// SchedGTO is greedy-then-oldest: keep issuing from the same warp
	// until it stalls, then fall back to the oldest ready warp.
	SchedGTO
)

// String returns the policy name.
func (s SchedulerPolicy) String() string {
	if s == SchedGTO {
		return "gto"
	}
	return "rr"
}

// Chip is a complete simulated-GPU configuration.
type Chip struct {
	// Name is the marketing name, e.g. "GeForce GTX 480".
	Name string
	// Vendor selects the simulator (nvsim or amdsim) and ISA dialect.
	Vendor gpu.Vendor
	// Arch is the microarchitecture family name.
	Arch string
	// Units is the number of streaming multiprocessors (NVIDIA) or
	// compute units (AMD).
	Units int
	// ClockGHz is the shader/engine clock.
	ClockGHz float64
	// RegsPerUnit is the number of 32-bit vector register entries per
	// unit (for AMD this is the VGPR file: all four SIMDs of a CU).
	RegsPerUnit int
	// LocalBytesPerUnit is the shared memory (NVIDIA) / LDS (AMD) size.
	LocalBytesPerUnit int
	// MaxWarpsPerUnit caps resident warps/wavefronts per unit.
	MaxWarpsPerUnit int
	// MaxGroupsPerUnit caps resident thread blocks/workgroups per unit.
	MaxGroupsPerUnit int
	// WarpWidth is the SIMT execution width (32 NVIDIA, 64 AMD).
	WarpWidth int
	// IssueWidth is the number of warp instructions a unit can issue per
	// issue opportunity; IssuePeriod is the number of cycles between
	// issue opportunities. G80/GT200 pipe a 32-thread warp through 8
	// lanes over 4 cycles (1 instr / 4 cyc); Fermi's dual schedulers
	// issue 2 instr / cyc; a Tahiti CU issues to each of its 4 SIMDs
	// once per 4-cycle wavefront slot.
	IssueWidth  int
	IssuePeriod int
	// Scheduler selects issue arbitration (round-robin by default; the
	// GTO alternative is exercised by the scheduler ablation).
	Scheduler SchedulerPolicy
	// Latencies in cycles per operation class.
	ALULat    int
	SFULat    int
	LocalLat  int
	GlobalLat int
	// GlobalMemBytes is the simulated device-memory capacity. The real
	// boards carry 0.5-3 GB; the simulated workloads need only a few MB,
	// and a small memory keeps per-injection reset cheap.
	GlobalMemBytes int
}

// Validate checks the configuration for internal consistency.
func (c *Chip) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("chips: empty name")
	case c.Units <= 0:
		return fmt.Errorf("chips: %s: non-positive unit count %d", c.Name, c.Units)
	case c.ClockGHz <= 0:
		return fmt.Errorf("chips: %s: non-positive clock %v", c.Name, c.ClockGHz)
	case c.RegsPerUnit <= 0:
		return fmt.Errorf("chips: %s: non-positive register file %d", c.Name, c.RegsPerUnit)
	case c.LocalBytesPerUnit <= 0:
		return fmt.Errorf("chips: %s: non-positive local memory %d", c.Name, c.LocalBytesPerUnit)
	case c.WarpWidth != 32 && c.WarpWidth != 64:
		return fmt.Errorf("chips: %s: warp width %d not 32 or 64", c.Name, c.WarpWidth)
	case c.MaxWarpsPerUnit <= 0 || c.MaxGroupsPerUnit <= 0:
		return fmt.Errorf("chips: %s: non-positive residency caps", c.Name)
	case c.IssueWidth <= 0 || c.IssuePeriod <= 0:
		return fmt.Errorf("chips: %s: non-positive issue model", c.Name)
	case c.ALULat <= 0 || c.SFULat <= 0 || c.LocalLat <= 0 || c.GlobalLat <= 0:
		return fmt.Errorf("chips: %s: non-positive latency", c.Name)
	case c.GlobalMemBytes <= 0:
		return fmt.Errorf("chips: %s: non-positive global memory", c.Name)
	}
	return nil
}

// StructSize returns the per-unit capacity of a structure in entries
// (32-bit registers or bytes).
func (c *Chip) StructSize(st gpu.Structure) int {
	if st == gpu.RegisterFile {
		return c.RegsPerUnit
	}
	return c.LocalBytesPerUnit
}

// StructBits returns the chip-wide structure capacity in bits.
func (c *Chip) StructBits(st gpu.Structure) int64 {
	return int64(c.Units) * int64(c.StructSize(st)) * int64(gpu.EntryBits(st))
}

const defaultGlobalMem = 8 << 20

// QuadroFX5600 returns the NVIDIA G80-class configuration (GUFI target 1).
func QuadroFX5600() *Chip {
	return &Chip{
		Name: "Quadro FX 5600", Vendor: gpu.NVIDIA, Arch: "G80",
		Units: 16, ClockGHz: 1.350,
		RegsPerUnit: 8192, LocalBytesPerUnit: 16 << 10,
		MaxWarpsPerUnit: 24, MaxGroupsPerUnit: 8,
		WarpWidth: 32, IssueWidth: 1, IssuePeriod: 4,
		ALULat: 8, SFULat: 16, LocalLat: 24, GlobalLat: 400,
		GlobalMemBytes: defaultGlobalMem,
	}
}

// QuadroFX5800 returns the NVIDIA GT200-class configuration (GUFI target 2).
func QuadroFX5800() *Chip {
	return &Chip{
		Name: "Quadro FX 5800", Vendor: gpu.NVIDIA, Arch: "GT200",
		Units: 30, ClockGHz: 1.296,
		RegsPerUnit: 16384, LocalBytesPerUnit: 16 << 10,
		MaxWarpsPerUnit: 32, MaxGroupsPerUnit: 8,
		WarpWidth: 32, IssueWidth: 1, IssuePeriod: 4,
		ALULat: 8, SFULat: 16, LocalLat: 24, GlobalLat: 440,
		GlobalMemBytes: defaultGlobalMem,
	}
}

// GeForceGTX480 returns the NVIDIA Fermi-class configuration (GUFI target 3).
func GeForceGTX480() *Chip {
	return &Chip{
		Name: "GeForce GTX 480", Vendor: gpu.NVIDIA, Arch: "Fermi",
		Units: 15, ClockGHz: 1.401,
		RegsPerUnit: 32768, LocalBytesPerUnit: 48 << 10,
		MaxWarpsPerUnit: 48, MaxGroupsPerUnit: 8,
		WarpWidth: 32, IssueWidth: 2, IssuePeriod: 1,
		ALULat: 18, SFULat: 22, LocalLat: 26, GlobalLat: 460,
		GlobalMemBytes: defaultGlobalMem,
	}
}

// HDRadeon7970 returns the AMD Tahiti / Southern Islands configuration
// (SIFI target).
func HDRadeon7970() *Chip {
	return &Chip{
		Name: "HD Radeon 7970", Vendor: gpu.AMD, Arch: "Southern Islands",
		Units: 32, ClockGHz: 0.925,
		// 64 KB VGPR per SIMD x 4 SIMDs per CU = 65,536 32-bit entries.
		RegsPerUnit: 65536, LocalBytesPerUnit: 64 << 10,
		MaxWarpsPerUnit: 40, MaxGroupsPerUnit: 16,
		WarpWidth: 64, IssueWidth: 4, IssuePeriod: 4,
		ALULat: 8, SFULat: 16, LocalLat: 32, GlobalLat: 500,
		GlobalMemBytes: defaultGlobalMem,
	}
}

// MiniNVIDIA returns a 2-SM NVIDIA configuration for fast unit tests.
func MiniNVIDIA() *Chip {
	return &Chip{
		Name: "Mini NVIDIA", Vendor: gpu.NVIDIA, Arch: "G80",
		Units: 2, ClockGHz: 1.0,
		RegsPerUnit: 8192, LocalBytesPerUnit: 8 << 10,
		MaxWarpsPerUnit: 16, MaxGroupsPerUnit: 4,
		WarpWidth: 32, IssueWidth: 1, IssuePeriod: 2,
		ALULat: 4, SFULat: 8, LocalLat: 12, GlobalLat: 80,
		GlobalMemBytes: 4 << 20,
	}
}

// MiniAMD returns a 2-CU AMD configuration for fast unit tests.
func MiniAMD() *Chip {
	return &Chip{
		Name: "Mini AMD", Vendor: gpu.AMD, Arch: "Southern Islands",
		Units: 2, ClockGHz: 1.0,
		RegsPerUnit: 8192, LocalBytesPerUnit: 16 << 10,
		MaxWarpsPerUnit: 16, MaxGroupsPerUnit: 8,
		WarpWidth: 64, IssueWidth: 2, IssuePeriod: 2,
		ALULat: 4, SFULat: 8, LocalLat: 12, GlobalLat: 80,
		GlobalMemBytes: 4 << 20,
	}
}

// TeslaC2050 returns a second Fermi-class part (14 SMs, ECC-capable in
// reality — simulated here without ECC so that AVFs are comparable).
// Not part of the paper's evaluation; available for sweeps.
func TeslaC2050() *Chip {
	return &Chip{
		Name: "Tesla C2050", Vendor: gpu.NVIDIA, Arch: "Fermi",
		Units: 14, ClockGHz: 1.150,
		RegsPerUnit: 32768, LocalBytesPerUnit: 48 << 10,
		MaxWarpsPerUnit: 48, MaxGroupsPerUnit: 8,
		WarpWidth: 32, IssueWidth: 2, IssuePeriod: 1,
		ALULat: 18, SFULat: 22, LocalLat: 26, GlobalLat: 460,
		GlobalMemBytes: defaultGlobalMem,
	}
}

// GeForceGTX280 returns the consumer GT200 part (30 SMs at 1.296 GHz).
// Not part of the paper's evaluation; available for sweeps.
func GeForceGTX280() *Chip {
	c := QuadroFX5800()
	c.Name = "GeForce GTX 280"
	return c
}

// HDRadeon7850 returns a smaller Southern Islands part (Pitcairn,
// 16 CUs). Not part of the paper's evaluation; available for sweeps.
func HDRadeon7850() *Chip {
	return &Chip{
		Name: "HD Radeon 7850", Vendor: gpu.AMD, Arch: "Southern Islands",
		Units: 16, ClockGHz: 0.860,
		RegsPerUnit: 65536, LocalBytesPerUnit: 64 << 10,
		MaxWarpsPerUnit: 40, MaxGroupsPerUnit: 16,
		WarpWidth: 64, IssueWidth: 4, IssuePeriod: 4,
		ALULat: 8, SFULat: 16, LocalLat: 32, GlobalLat: 500,
		GlobalMemBytes: defaultGlobalMem,
	}
}

// Evaluated returns the four chips of the paper's evaluation in the
// figure order: HD Radeon 7970, Quadro FX 5600, Quadro FX 5800, GTX 480.
func Evaluated() []*Chip {
	return []*Chip{HDRadeon7970(), QuadroFX5600(), QuadroFX5800(), GeForceGTX480()}
}

// Extended returns additional (non-paper) chips usable for sweeps.
func Extended() []*Chip {
	return []*Chip{TeslaC2050(), GeForceGTX280(), HDRadeon7850()}
}

// ByName looks a chip up by its marketing name (as printed in figures).
func ByName(name string) (*Chip, error) {
	all := append(Evaluated(), Extended()...)
	for _, c := range append(all, MiniNVIDIA(), MiniAMD()) {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("chips: unknown chip %q", name)
}
