package workloads

import (
	"testing"

	"repro/internal/amdsim"
	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/nvsim"
)

// TestGTOSchedulerCorrectness runs the whole suite under the
// greedy-then-oldest scheduler on both vendors: architectural results
// must be identical to the round-robin runs (Verify passes), only timing
// may differ.
func TestGTOSchedulerCorrectness(t *testing.T) {
	nvChip := chips.MiniNVIDIA()
	nvChip.Scheduler = chips.SchedGTO
	amdChip := chips.MiniAMD()
	amdChip.Scheduler = chips.SchedGTO

	for _, b := range All() {
		for _, v := range []gpu.Vendor{gpu.NVIDIA, gpu.AMD} {
			b, v := b, v
			t.Run(b.Name+"/"+v.String(), func(t *testing.T) {
				hp, err := b.New(v)
				if err != nil {
					t.Fatal(err)
				}
				var d gpu.Device
				if v == gpu.NVIDIA {
					d, err = nvsim.New(nvChip)
				} else {
					d, err = amdsim.New(amdChip)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := hp.Run(d); err != nil {
					t.Fatalf("Run under GTO: %v", err)
				}
				if err := hp.Verify(d); err != nil {
					t.Fatalf("Verify under GTO: %v", err)
				}
			})
		}
	}
}

// TestSchedulerAffectsTimingOnly compares cycle counts between policies
// on a multi-warp benchmark; they may differ, but both must be positive
// and within a sane band of one another.
func TestSchedulerAffectsTimingOnly(t *testing.T) {
	b, err := ByName("matrixMul")
	if err != nil {
		t.Fatal(err)
	}
	cycles := func(pol chips.SchedulerPolicy) int64 {
		chip := chips.MiniNVIDIA()
		chip.Scheduler = pol
		d, err := nvsim.New(chip)
		if err != nil {
			t.Fatal(err)
		}
		hp, err := b.New(gpu.NVIDIA)
		if err != nil {
			t.Fatal(err)
		}
		if err := hp.Run(d); err != nil {
			t.Fatal(err)
		}
		return d.Stats().Cycles
	}
	rr := cycles(chips.SchedRR)
	gto := cycles(chips.SchedGTO)
	if rr <= 0 || gto <= 0 {
		t.Fatalf("cycles rr=%d gto=%d", rr, gto)
	}
	ratio := float64(gto) / float64(rr)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("policies diverge implausibly: rr=%d gto=%d", rr, gto)
	}
}
