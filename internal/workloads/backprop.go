package workloads

import (
	"math"

	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// backprop (Rodinia): the layer-forward kernel of the back-propagation
// network. One block per hidden unit computes the weighted sum of the
// input layer with a shared-memory tree reduction, then thread 0 applies
// the sigmoid through the hardware exp2/rcp units:
// sigmoid(x) = 1 / (1 + 2^(-x*log2 e)).

const (
	bpIn    = 256 // input-layer units
	bpHid   = 64  // hidden-layer units
	bpGroup = 64  // threads per block (one block per hidden unit)
	// bpNegLog2E is -log2(e) written with the same decimal literal in
	// both kernel dialects.
	bpNegLog2E = float32(-1.4426950408889634)
)

const backpropSASSSrc = `
.kernel backprop
.shared 256                    ; 64*4 partial sums
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X         ; hidden unit j
    S2R R2, SR_NTID.X
    MOV R3, 0                  ; acc
    MOV R4, R0                 ; i = tid
bl:
    SHL R5, R4, 2
    IADD R5, R5, c[0]
    LDG R6, [R5]               ; input[i]
    IMUL R7, R4, c[4]
    IADD R7, R7, R1
    SHL R7, R7, 2
    IADD R7, R7, c[1]
    LDG R8, [R7]               ; w[i*hid+j]
    FMUL R9, R6, R8
    FADD R3, R3, R9
    IADD R4, R4, R2
    ISETP.LT P0, R4, c[3]
@P0 BRA bl
    SHL R10, R0, 2
    STS [R10], R3
    BAR.SYNC
    MOV R11, 32                ; stride
rl:
    SSY rle
    ISETP.GE P1, R0, R11
@P1 BRA rsk
    IADD R12, R0, R11
    SHL R13, R12, 2
    LDS R14, [R13]
    LDS R15, [R10]
    FADD R15, R15, R14
    STS [R10], R15
rsk:
    SYNC
rle:
    BAR.SYNC
    SHR R11, R11, 1
    ISETP.GE P2, R11, 1
@P2 BRA rl
    SSY fin
    ISETP.NE P3, R0, 0
@P3 BRA wsk
    LDS R16, [R10]
    MOV R17, -1.4426950408889634f
    FMUL R18, R16, R17
    MUFU.EX2 R19, R18
    MOV R20, 1.0f
    FADD R21, R19, R20
    MUFU.RCP R22, R21
    SHL R23, R1, 2
    IADD R23, R23, c[2]
    STG [R23], R22
wsk:
    SYNC
fin:
    EXIT
`

var backpropSASS = sass.MustAssemble(backpropSASSSrc)

const backpropSISrc = `
.kernel backprop
.lds 256
    s_load_dword s4, karg[0]       ; INPUT
    s_load_dword s5, karg[1]       ; W
    s_load_dword s6, karg[2]       ; OUT
    s_load_dword s7, karg[3]       ; nin
    s_load_dword s8, karg[4]       ; hid
    s_load_dword s9, karg[5]       ; group size
    v_mov_b32 v2, 0                ; acc
    v_mov_b32 v3, v0               ; i = tid
bl:
    v_lshlrev_b32 v4, 2, v3
    v_add_i32 v4, v4, s4
    buffer_load_dword v5, v4, 0    ; input[i]
    v_mul_i32 v6, v3, s8
    v_add_i32 v6, v6, s12          ; i*hid + j
    v_lshlrev_b32 v6, 2, v6
    v_add_i32 v6, v6, s5
    buffer_load_dword v7, v6, 0    ; w[i*hid+j]
    v_mul_f32 v8, v5, v7
    v_add_f32 v2, v2, v8
    v_add_i32 v3, v3, s9
    v_cmp_lt_i32 vcc, v3, s7
    s_cbranch_vccnz bl
    v_lshlrev_b32 v9, 2, v0
    ds_write_b32 v9, v2, 0
    s_barrier
    s_mov_b32 s10, 32              ; stride
rl:
    v_cmp_lt_i32 vcc, v0, s10
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz rsk
    v_add_i32 v10, v0, s10
    v_lshlrev_b32 v11, 2, v10
    ds_read_b32 v12, v11, 0
    ds_read_b32 v13, v9, 0
    v_add_f32 v13, v13, v12
    ds_write_b32 v9, v13, 0
rsk:
    s_mov_b64 exec, s[14:15]
    s_barrier
    s_lshr_b32 s10, s10, 1
    s_cmp_ge_i32 s10, 1
    s_cbranch_scc1 rl
    v_cmp_eq_i32 vcc, v0, 0
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz wsk
    ds_read_b32 v14, v9, 0
    v_mul_f32 v15, v14, -1.4426950408889634f
    v_exp_f32 v16, v15
    v_add_f32 v17, v16, 1.0f
    v_rcp_f32 v18, v17
    s_lshl_b32 s16, s12, 2
    v_mov_b32 v19, s16
    v_add_i32 v19, v19, s6
    buffer_store_dword v18, v19, 0
wsk:
    s_mov_b64 exec, s[14:15]
    s_endpgm
`

var backpropSI = siasm.MustAssemble(backpropSISrc)

// backpropGolden replicates the kernel float32 order: strided per-thread
// partial sums, shared-memory tree reduction, then the exp2/rcp sigmoid.
func backpropGolden(input, w []float32) []float32 {
	out := make([]float32, bpHid)
	partial := make([]float32, bpGroup)
	for j := 0; j < bpHid; j++ {
		for t := 0; t < bpGroup; t++ {
			var acc float32
			for i := t; i < bpIn; i += bpGroup {
				acc += input[i] * w[i*bpHid+j]
			}
			partial[t] = acc
		}
		for s := bpGroup / 2; s >= 1; s /= 2 {
			for t := 0; t < s; t++ {
				partial[t] += partial[t+s]
			}
		}
		x := partial[0] * bpNegLog2E
		e := float32(math.Exp2(float64(x)))
		out[j] = 1 / (e + 1)
	}
	return out
}

func newBackprop(v gpu.Vendor) (*gpu.HostProgram, error) {
	rng := stats.NewRNG(0x5eed0000)
	input := randFloats(rng, bpIn, -1, 1)
	w := randFloats(rng, bpIn*bpHid, -0.5, 0.5)
	want := backpropGolden(input, w)

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "backprop"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrIn, err := mem.AllocFloats(input)
		if err != nil {
			return err
		}
		addrW, err := mem.AllocFloats(w)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * bpHid)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D1(bpHid),
			Group: gpu.D1(bpGroup),
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = backpropSASS
			spec.Args = []uint32{addrIn, addrW, outAddr, bpIn, bpHid}
		case gpu.AMD:
			spec.Kernel = backpropSI
			spec.Args = []uint32{addrIn, addrW, outAddr, bpIn, bpHid, bpGroup}
		default:
			return dialectErr("backprop", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * bpHid}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, "backprop", outAddr, want)
	}
	return hp, nil
}
