package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// reduction: per-block shared-memory tree sum (the SDK reduction kernel).
// Each block of 128 threads loads one element (boundary-guarded), then
// halves the active thread count each step; block partial sums are the
// program output, merged on the host exactly as the SDK version does.

const (
	reductionN     = 4096
	reductionGroup = 128
)

const reductionSASSSrc = `
.kernel reduction
.shared 512                    ; 128*4
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0        ; gid
    MOV R4, 0                  ; value (0 pad beyond n)
    SSY ld_end
    ISETP.GE P0, R3, c[2]
@P0 BRA ld_skip
    SHL R5, R3, 2
    IADD R5, R5, c[0]
    LDG R4, [R5]
ld_skip:
    SYNC
ld_end:
    SHL R6, R0, 2              ; tid*4
    STS [R6], R4
    BAR.SYNC
    MOV R7, 64                 ; stride s
loop:
    ISETP.GE P1, R0, R7
    SSY it_end
@P1 BRA it_skip
    IADD R8, R0, R7
    SHL R9, R8, 2
    LDS R10, [R9]              ; sdata[tid+s]
    LDS R11, [R6]              ; sdata[tid]
    FADD R11, R11, R10
    STS [R6], R11
it_skip:
    SYNC
it_end:
    BAR.SYNC
    SHR R7, R7, 1
    ISETP.GE P2, R7, 1
@P2 BRA loop
    SSY fin
    ISETP.NE P3, R0, 0
@P3 BRA w_skip
    LDS R12, [R6]
    SHL R13, R1, 2
    IADD R13, R13, c[1]
    STG [R13], R12
w_skip:
    SYNC
fin:
    EXIT
`

var reductionSASS = sass.MustAssemble(reductionSASSSrc)

const reductionSISrc = `
.kernel reduction
.lds 512
    s_load_dword s4, karg[0]       ; IN
    s_load_dword s5, karg[1]       ; OUT
    s_load_dword s6, karg[2]       ; n
    s_load_dword s7, karg[3]       ; group size
    s_mul_i32 s8, s12, s7
    v_add_i32 v2, v0, s8           ; gid
    v_mov_b32 v3, 0                ; value
    v_cmp_lt_i32 vcc, v2, s6
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz ld_done
    v_lshlrev_b32 v4, 2, v2
    v_add_i32 v4, v4, s4
    buffer_load_dword v3, v4, 0
ld_done:
    s_mov_b64 exec, s[10:11]
    v_lshlrev_b32 v5, 2, v0        ; tid*4
    ds_write_b32 v5, v3, 0
    s_barrier
    s_mov_b32 s9, 64               ; stride s
loop:
    v_cmp_lt_i32 vcc, v0, s9
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz it_skip
    v_add_i32 v6, v0, s9
    v_lshlrev_b32 v7, 2, v6
    ds_read_b32 v8, v7, 0
    ds_read_b32 v9, v5, 0
    v_add_f32 v9, v9, v8
    ds_write_b32 v5, v9, 0
it_skip:
    s_mov_b64 exec, s[10:11]
    s_barrier
    s_lshr_b32 s9, s9, 1
    s_cmp_ge_i32 s9, 1
    s_cbranch_scc1 loop
    v_cmp_eq_i32 vcc, v0, 0
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz w_skip
    ds_read_b32 v10, v5, 0
    s_lshl_b32 s14, s12, 2
    v_mov_b32 v11, s14
    v_add_i32 v11, v11, s5
    buffer_store_dword v10, v11, 0
w_skip:
    s_mov_b64 exec, s[10:11]
    s_endpgm
`

var reductionSI = siasm.MustAssemble(reductionSISrc)

// reductionGolden replicates the kernel's tree order per block.
func reductionGolden(in []float32, n, group int) []float32 {
	blocks := (n + group - 1) / group
	out := make([]float32, blocks)
	sdata := make([]float32, group)
	for b := 0; b < blocks; b++ {
		for t := 0; t < group; t++ {
			i := b*group + t
			if i < n {
				sdata[t] = in[i]
			} else {
				sdata[t] = 0
			}
		}
		for s := group / 2; s >= 1; s /= 2 {
			for t := 0; t < s; t++ {
				sdata[t] += sdata[t+s]
			}
		}
		out[b] = sdata[0]
	}
	return out
}

func newReduction(v gpu.Vendor) (*gpu.HostProgram, error) {
	const n = reductionN
	const group = reductionGroup
	rng := stats.NewRNG(0x5eed0007)
	in := randFloats(rng, n, -1, 1)
	want := reductionGolden(in, n, group)
	blocks := len(want)

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "reduction"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrIn, err := mem.AllocFloats(in)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * blocks)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D1(blocks),
			Group: gpu.D1(group),
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = reductionSASS
			spec.Args = []uint32{addrIn, outAddr, n}
		case gpu.AMD:
			spec.Kernel = reductionSI
			spec.Args = []uint32{addrIn, outAddr, n, group}
		default:
			return dialectErr("reduction", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: uint32(4 * blocks)}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, "reduction", outAddr, want)
	}
	return hp, nil
}
