package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// scan: per-block Hillis-Steele inclusive prefix sum, double-buffered in
// shared memory (the SDK "scan" workload shape). n is a multiple of the
// block size, as in the SDK version.

const (
	scanN     = 1024
	scanGroup = 128
	// scanHalf is the byte offset of the second shared buffer.
	scanHalf = scanGroup * 4
)

const scanSASSSrc = `
.kernel scan
.shared 1024                  ; two 128-word buffers
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0        ; gid
    SHL R4, R3, 2
    IADD R4, R4, c[0]
    LDG R5, [R4]
    SHL R6, R0, 2              ; tid*4
    STS [R6], R5
    BAR.SYNC
    MOV R7, 1                  ; offset
    MOV R8, 0                  ; src buffer base
    MOV R9, 512
loop:
    ISUB R10, R9, R8           ; dst buffer base
    IADD R11, R6, R8
    LDS R12, [R11]             ; own value
    SSY add_end
    ISETP.LT P0, R0, R7
@P0 BRA add_skip
    ISUB R13, R0, R7
    SHL R13, R13, 2
    IADD R13, R13, R8
    LDS R14, [R13]
    FADD R12, R12, R14
add_skip:
    SYNC
add_end:
    IADD R15, R6, R10
    STS [R15], R12
    BAR.SYNC
    ISUB R8, R9, R8            ; swap buffers
    SHL R7, R7, 1
    ISETP.LT P1, R7, R2
@P1 BRA loop
    IADD R16, R6, R8
    LDS R17, [R16]
    SHL R18, R3, 2
    IADD R18, R18, c[1]
    STG [R18], R17
    EXIT
`

var scanSASS = sass.MustAssemble(scanSASSSrc)

const scanSISrc = `
.kernel scan
.lds 1024
    s_load_dword s4, karg[0]       ; IN
    s_load_dword s5, karg[1]       ; OUT
    s_load_dword s6, karg[2]       ; group size
    s_mul_i32 s7, s12, s6
    v_add_i32 v2, v0, s7           ; gid
    v_lshlrev_b32 v3, 2, v2
    v_add_i32 v3, v3, s4
    buffer_load_dword v4, v3, 0
    v_lshlrev_b32 v5, 2, v0        ; tid*4
    ds_write_b32 v5, v4, 0
    s_barrier
    s_mov_b32 s8, 1                ; offset
    s_mov_b32 s9, 0                ; src base
loop:
    s_sub_i32 s10, 512, s9         ; dst base
    v_add_i32 v6, v5, s9
    ds_read_b32 v7, v6, 0          ; own value
    v_cmp_ge_i32 vcc, v0, s8
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz add_skip
    v_sub_i32 v8, v0, s8
    v_lshlrev_b32 v8, 2, v8
    v_add_i32 v8, v8, s9
    ds_read_b32 v9, v8, 0
    v_add_f32 v7, v7, v9
add_skip:
    s_mov_b64 exec, s[14:15]
    v_add_i32 v10, v5, s10
    ds_write_b32 v10, v7, 0
    s_barrier
    s_sub_i32 s9, 512, s9
    s_lshl_b32 s8, s8, 1
    s_cmp_lt_i32 s8, s6
    s_cbranch_scc1 loop
    v_add_i32 v11, v5, s9
    ds_read_b32 v12, v11, 0
    v_lshlrev_b32 v13, 2, v2
    v_add_i32 v13, v13, s5
    buffer_store_dword v12, v13, 0
    s_endpgm
`

var scanSI = siasm.MustAssemble(scanSISrc)

// scanGolden replicates the Hillis-Steele order per block.
func scanGolden(in []float32, n, group int) []float32 {
	out := make([]float32, n)
	src := make([]float32, group)
	dst := make([]float32, group)
	for b := 0; b < n/group; b++ {
		copy(src, in[b*group:(b+1)*group])
		for off := 1; off < group; off *= 2 {
			for t := 0; t < group; t++ {
				v := src[t]
				if t >= off {
					v += src[t-off]
				}
				dst[t] = v
			}
			src, dst = dst, src
		}
		copy(out[b*group:], src)
	}
	return out
}

func newScan(v gpu.Vendor) (*gpu.HostProgram, error) {
	const n = scanN
	const group = scanGroup
	rng := stats.NewRNG(0x5eed0008)
	in := randFloats(rng, n, -2, 2)
	want := scanGolden(in, n, group)

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "scan"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrIn, err := mem.AllocFloats(in)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * n)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D1(n / group),
			Group: gpu.D1(group),
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = scanSASS
			spec.Args = []uint32{addrIn, outAddr}
		case gpu.AMD:
			spec.Kernel = scanSI
			spec.Args = []uint32{addrIn, outAddr, group}
		default:
			return dialectErr("scan", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * n}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, "scan", outAddr, want)
	}
	return hp, nil
}
