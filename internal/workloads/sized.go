package workloads

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/stats"
)

// NewVectorAddSized builds a vectoradd host program with a caller-chosen
// problem size. It backs the resource-occupancy study: sweeping n moves
// the number of resident blocks, hence the fraction of each chip's
// register file that holds live state, hence the AVF (the paper's
// occupancy correlation). The group size is the suite's standard 128.
func NewVectorAddSized(v gpu.Vendor, n int) (*gpu.HostProgram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workloads: vectoradd size %d must be positive", n)
	}
	rng := stats.NewRNG(0x5eed0001 ^ uint64(n))
	a := randFloats(rng, n, -4, 4)
	b := randFloats(rng, n, -4, 4)
	want := make([]float32, n)
	for i := range want {
		want[i] = a[i] + b[i]
	}

	var outAddr uint32
	hp := &gpu.HostProgram{Name: fmt.Sprintf("vectoradd-n%d", n)}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrA, err := mem.AllocFloats(a)
		if err != nil {
			return err
		}
		addrB, err := mem.AllocFloats(b)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * n)
		if err != nil {
			return err
		}
		grid := gpu.D1((n + vectorAddGroup - 1) / vectorAddGroup)
		group := gpu.D1(vectorAddGroup)
		switch v {
		case gpu.NVIDIA:
			return d.Launch(gpu.LaunchSpec{
				Kernel: vectorAddSASS, Grid: grid, Group: group,
				Args: []uint32{addrA, addrB, outAddr, uint32(n)},
			})
		case gpu.AMD:
			return d.Launch(gpu.LaunchSpec{
				Kernel: vectorAddSI, Grid: grid, Group: group,
				Args: []uint32{addrA, addrB, outAddr, uint32(n), vectorAddGroup},
			})
		default:
			return dialectErr("vectoradd", v)
		}
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: uint32(4 * n)}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, hp.Name, outAddr, want)
	}
	return hp, nil
}

// SizedBenchmark wraps NewVectorAddSized as a Benchmark so campaign
// drivers can sweep problem sizes.
func SizedBenchmark(n int) *Benchmark {
	return &Benchmark{
		Name: fmt.Sprintf("vectoradd-n%d", n),
		New: func(v gpu.Vendor) (*gpu.HostProgram, error) {
			return NewVectorAddSized(v, n)
		},
	}
}
