package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// histogram: 16-bin histogram in the SDK histogram64/256 style: every
// thread maintains a private sub-histogram row in shared memory (which
// avoids atomics, just like the per-thread sub-histogram trick of the SDK
// kernel), then the first 16 threads reduce the columns and emit one
// partial histogram per block; the host merges partials.

const (
	histBins     = 16
	histGroup    = 64
	histItems    = 16 // items per thread
	histBlocks   = 4
	histN        = histBlocks * histGroup * histItems
	histRowBytes = histBins * 4
)

const histogramSASSSrc = `
.kernel histogram
.shared 4096                   ; 64 rows x 16 bins x 4B
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    SHL R4, R0, 6              ; row base = tid*64 bytes
    MOV R3, 0                  ; bin clear loop
zl:
    SHL R5, R3, 2
    IADD R5, R5, R4
    MOV R6, 0
    STS [R5], R6
    IADD R3, R3, 1
    ISETP.LT P0, R3, c[3]
@P0 BRA zl
    IMAD R7, R1, R2, R0        ; linear thread id
    IMUL R8, R7, c[2]          ; first item index
    MOV R9, 0                  ; item loop
il:
    IADD R10, R8, R9
    SHL R11, R10, 2
    IADD R11, R11, c[0]
    LDG R12, [R11]
    AND R12, R12, 15           ; bin
    SHL R13, R12, 2
    IADD R13, R13, R4
    LDS R14, [R13]
    IADD R14, R14, 1
    STS [R13], R14
    IADD R9, R9, 1
    ISETP.LT P1, R9, c[2]
@P1 BRA il
    BAR.SYNC
    SSY fin
    ISETP.GE P2, R0, c[3]
@P2 BRA r_skip
    MOV R15, 0                 ; column sum
    MOV R16, 0                 ; row loop
rl:
    SHL R17, R16, 6
    SHL R18, R0, 2
    IADD R18, R18, R17
    LDS R19, [R18]
    IADD R15, R15, R19
    IADD R16, R16, 1
    ISETP.LT P3, R16, R2
@P3 BRA rl
    IMUL R20, R1, c[3]
    IADD R20, R20, R0
    SHL R21, R20, 2
    IADD R21, R21, c[1]
    STG [R21], R15
r_skip:
    SYNC
fin:
    EXIT
`

var histogramSASS = sass.MustAssemble(histogramSASSSrc)

const histogramSISrc = `
.kernel histogram
.lds 4096
    s_load_dword s4, karg[0]       ; IN
    s_load_dword s5, karg[1]       ; OUT
    s_load_dword s6, karg[2]       ; items per thread
    s_load_dword s7, karg[3]       ; bins
    s_load_dword s8, karg[4]       ; group size
    v_lshlrev_b32 v2, 6, v0        ; row base = tid*64
    s_mov_b32 s9, 0
zl:
    s_lshl_b32 s10, s9, 2
    v_add_i32 v3, v2, s10
    v_mov_b32 v4, 0
    ds_write_b32 v3, v4, 0
    s_add_i32 s9, s9, 1
    s_cmp_lt_i32 s9, s7
    s_cbranch_scc1 zl
    s_mul_i32 s11, s12, s8
    v_add_i32 v5, v0, s11          ; linear thread id
    v_mul_i32 v5, v5, s6           ; first item index
    s_mov_b32 s9, 0
il:
    v_add_i32 v6, v5, s9
    v_lshlrev_b32 v6, 2, v6
    v_add_i32 v6, v6, s4
    buffer_load_dword v7, v6, 0
    v_and_b32 v7, v7, 15
    v_lshlrev_b32 v7, 2, v7
    v_add_i32 v7, v7, v2
    ds_read_b32 v8, v7, 0
    v_add_i32 v8, v8, 1
    ds_write_b32 v7, v8, 0
    s_add_i32 s9, s9, 1
    s_cmp_lt_i32 s9, s6
    s_cbranch_scc1 il
    s_barrier
    v_cmp_lt_i32 vcc, v0, s7
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz r_end
    v_mov_b32 v9, 0                ; column sum
    s_mov_b32 s9, 0                ; row loop
rl:
    s_lshl_b32 s10, s9, 6
    v_lshlrev_b32 v10, 2, v0
    v_add_i32 v10, v10, s10
    ds_read_b32 v11, v10, 0
    v_add_i32 v9, v9, v11
    s_add_i32 s9, s9, 1
    s_cmp_lt_i32 s9, s8
    s_cbranch_scc1 rl
    s_mul_i32 s16, s12, s7
    v_add_i32 v12, v0, s16
    v_lshlrev_b32 v12, 2, v12
    v_add_i32 v12, v12, s5
    buffer_store_dword v9, v12, 0
r_end:
    s_mov_b64 exec, s[14:15]
    s_endpgm
`

var histogramSI = siasm.MustAssemble(histogramSISrc)

// histogramGolden computes per-block partial histograms.
func histogramGolden(in []uint32) []uint32 {
	out := make([]uint32, histBlocks*histBins)
	perBlock := histGroup * histItems
	for i, v := range in {
		b := i / perBlock
		out[b*histBins+int(v&15)]++
	}
	return out
}

func newHistogram(v gpu.Vendor) (*gpu.HostProgram, error) {
	rng := stats.NewRNG(0x5eed0004)
	in := randWords(rng, histN, 1<<16) // only the low 4 bits bin
	want := histogramGolden(in)

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "histogram"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrIn, err := mem.AllocWords(in)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * histBlocks * histBins)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D1(histBlocks),
			Group: gpu.D1(histGroup),
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = histogramSASS
			spec.Args = []uint32{addrIn, outAddr, histItems, histBins}
		case gpu.AMD:
			spec.Kernel = histogramSI
			spec.Args = []uint32{addrIn, outAddr, histItems, histBins, histGroup}
		default:
			return dialectErr("histogram", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * histBlocks * histBins}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyWords(d, "histogram", outAddr, want)
	}
	return hp, nil
}
