package workloads

import "repro/internal/gpu"

// KernelSources returns the raw assembly of every kernel of the
// 10-benchmark suite in the given vendor's dialect. The assembler fuzz
// targets use these as their seed corpus, so every grammar production the
// real benchmarks exercise is in the initial fuzzing population.
func KernelSources(v gpu.Vendor) []string {
	if v == gpu.NVIDIA {
		return []string{
			backpropSASSSrc,
			dwtSASSSrc,
			gaussFan1SASSSrc,
			gaussFan2SASSSrc,
			histogramSASSSrc,
			kmeansSASSSrc,
			matrixMulSASSSrc,
			reductionSASSSrc,
			scanSASSSrc,
			transposeSASSSrc,
			vectorAddSASSSrc,
		}
	}
	return []string{
		backpropSISrc,
		dwtSISrc,
		gaussFan1SISrc,
		gaussFan2SISrc,
		histogramSISrc,
		kmeansSISrc,
		matrixMulSISrc,
		reductionSISrc,
		scanSISrc,
		transposeSISrc,
		vectorAddSISrc,
	}
}
