package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// dwtHaar1D: the SDK 1-D Haar discrete wavelet transform. Each thread
// stages one input pair through shared memory and emits the approximation
// (a+b)/sqrt2 and detail (a-b)/sqrt2 coefficients. The host runs two
// decomposition levels (the second level transforms the first level's
// approximation signal), exercising multi-launch host programs.

const (
	dwtN     = 2048
	dwtGroup = 64
	// dwtInvSqrt2 is 1/sqrt(2) rounded to float32, written with the same
	// decimal literal in both kernel dialects.
	dwtInvSqrt2 = float32(0.70710678)
)

const dwtSASSSrc = `
.kernel dwtHaar1D
.shared 512                    ; 64 pairs x 8B
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0        ; gid (pair index)
    SHL R4, R3, 3              ; 2*gid*4
    IADD R4, R4, c[0]
    LDG R5, [R4]               ; in[2*gid]
    LDG R6, [R4+4]             ; in[2*gid+1]
    SHL R7, R0, 3              ; pair slot in shared
    STS [R7], R5
    STS [R7+4], R6
    BAR.SYNC
    LDS R8, [R7]
    LDS R9, [R7+4]
    FADD R10, R8, R9
    FSUB R11, R8, R9
    MOV R12, 0.70710678f
    FMUL R10, R10, R12
    FMUL R11, R11, R12
    SHL R13, R3, 2
    IADD R14, R13, c[1]
    STG [R14], R10             ; approx[gid]
    IADD R15, R13, c[2]
    STG [R15], R11             ; detail[gid]
    EXIT
`

var dwtSASS = sass.MustAssemble(dwtSASSSrc)

const dwtSISrc = `
.kernel dwtHaar1D
.lds 512
    s_load_dword s4, karg[0]       ; IN
    s_load_dword s5, karg[1]       ; APPROX
    s_load_dword s6, karg[2]       ; DETAIL
    s_load_dword s7, karg[3]       ; group size
    s_mul_i32 s8, s12, s7
    v_add_i32 v2, v0, s8           ; gid
    v_lshlrev_b32 v3, 3, v2        ; 2*gid*4
    v_add_i32 v3, v3, s4
    buffer_load_dword v4, v3, 0
    buffer_load_dword v5, v3, 4
    v_lshlrev_b32 v6, 3, v0        ; pair slot
    ds_write_b32 v6, v4, 0
    ds_write_b32 v6, v5, 4
    s_barrier
    ds_read_b32 v7, v6, 0
    ds_read_b32 v8, v6, 4
    v_add_f32 v9, v7, v8
    v_sub_f32 v10, v7, v8
    v_mul_f32 v9, v9, 0.70710678f
    v_mul_f32 v10, v10, 0.70710678f
    v_lshlrev_b32 v11, 2, v2
    v_add_i32 v12, v11, s5
    buffer_store_dword v9, v12, 0
    v_add_i32 v13, v11, s6
    buffer_store_dword v10, v13, 0
    s_endpgm
`

var dwtSI = siasm.MustAssemble(dwtSISrc)

// dwtGoldenLevel computes one decomposition level in kernel order.
func dwtGoldenLevel(in []float32) (approx, detail []float32) {
	half := len(in) / 2
	approx = make([]float32, half)
	detail = make([]float32, half)
	for i := 0; i < half; i++ {
		a, b := in[2*i], in[2*i+1]
		approx[i] = (a + b) * dwtInvSqrt2
		detail[i] = (a - b) * dwtInvSqrt2
	}
	return approx, detail
}

func newDWTHaar1D(v gpu.Vendor) (*gpu.HostProgram, error) {
	const n = dwtN
	rng := stats.NewRNG(0x5eed0002)
	in := randFloats(rng, n, -8, 8)
	a1, d1 := dwtGoldenLevel(in)
	a2, d2 := dwtGoldenLevel(a1)

	var addrA1, addrD1, addrA2, addrD2 uint32
	hp := &gpu.HostProgram{Name: "dwtHaar1D"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrIn, err := mem.AllocFloats(in)
		if err != nil {
			return err
		}
		if addrA1, err = mem.Alloc(4 * n / 2); err != nil {
			return err
		}
		if addrD1, err = mem.Alloc(4 * n / 2); err != nil {
			return err
		}
		if addrA2, err = mem.Alloc(4 * n / 4); err != nil {
			return err
		}
		if addrD2, err = mem.Alloc(4 * n / 4); err != nil {
			return err
		}
		launch := func(src, ap, de uint32, pairs int) error {
			spec := gpu.LaunchSpec{
				Grid:  gpu.D1(pairs / dwtGroup),
				Group: gpu.D1(dwtGroup),
			}
			switch v {
			case gpu.NVIDIA:
				spec.Kernel = dwtSASS
				spec.Args = []uint32{src, ap, de}
			case gpu.AMD:
				spec.Kernel = dwtSI
				spec.Args = []uint32{src, ap, de, dwtGroup}
			default:
				return dialectErr("dwtHaar1D", v)
			}
			return d.Launch(spec)
		}
		if err := launch(addrIn, addrA1, addrD1, n/2); err != nil {
			return err
		}
		return launch(addrA1, addrA2, addrD2, n/4)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{
			{Addr: addrA2, Size: 4 * n / 4},
			{Addr: addrD2, Size: 4 * n / 4},
			{Addr: addrD1, Size: 4 * n / 2},
		}
	}
	hp.Verify = func(d gpu.Device) error {
		if err := verifyFloats(d, "dwtHaar1D(a2)", addrA2, a2); err != nil {
			return err
		}
		if err := verifyFloats(d, "dwtHaar1D(d2)", addrD2, d2); err != nil {
			return err
		}
		return verifyFloats(d, "dwtHaar1D(d1)", addrD1, d1)
	}
	return hp, nil
}
