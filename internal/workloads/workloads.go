// Package workloads re-implements the paper's 10-benchmark suite in both
// ISA dialects: every benchmark exists as a CUDA-style build (SASS
// assembly for nvsim) and an OpenCL-style build (SI assembly for amdsim),
// mirroring how the paper runs the same benchmarks from the CUDA SDK,
// the AMD-APP SDK and Rodinia on GUFI and SIFI.
//
// Each build is a deterministic gpu.HostProgram: inputs are generated
// from a fixed per-benchmark seed, the CPU golden model replicates the
// kernel's float32 operation order exactly (so Verify can require
// bit-identical outputs), and Outputs exposes the device regions that the
// fault-injection engine diffs against the golden run.
//
// The seven benchmarks whose kernels use shared memory / LDS (backprop,
// dwtHaar1D, histogram, matrixMul, reduction, scan, transpose) form the
// Fig. 2 subset, exactly as in the paper; gaussian, kmeans and vectoradd
// do not touch local memory.
package workloads

import (
	"fmt"
	"math"

	"repro/internal/gpu"
	"repro/internal/stats"
)

// Benchmark is one suite entry.
type Benchmark struct {
	// Name as printed in the paper's figures.
	Name string
	// UsesLocal marks membership in the local-memory (Fig. 2) subset.
	UsesLocal bool
	// New builds a fresh, deterministic host program in the dialect of
	// the given vendor.
	New func(v gpu.Vendor) (*gpu.HostProgram, error)
}

// All returns the benchmark suite in the paper's figure order.
func All() []*Benchmark {
	return []*Benchmark{
		{Name: "backprop", UsesLocal: true, New: newBackprop},
		{Name: "dwtHaar1D", UsesLocal: true, New: newDWTHaar1D},
		{Name: "gaussian", UsesLocal: false, New: newGaussian},
		{Name: "histogram", UsesLocal: true, New: newHistogram},
		{Name: "kmeans", UsesLocal: false, New: newKMeans},
		{Name: "matrixMul", UsesLocal: true, New: newMatrixMul},
		{Name: "reduction", UsesLocal: true, New: newReduction},
		{Name: "scan", UsesLocal: true, New: newScan},
		{Name: "transpose", UsesLocal: true, New: newTranspose},
		{Name: "vectoradd", UsesLocal: false, New: newVectorAdd},
	}
}

// LocalMemorySubset returns the Fig. 2 benchmarks (local-memory users).
func LocalMemorySubset() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if b.UsesLocal {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a benchmark by its figure name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// randFloats fills a slice with uniform values in [lo, hi).
func randFloats(rng *stats.RNG, n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + (hi-lo)*rng.Float32()
	}
	return out
}

// randWords fills a slice with uniform 32-bit values below bound.
func randWords(rng *stats.RNG, n int, bound uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(rng.Uint64n(uint64(bound)))
	}
	return out
}

// verifyFloats compares device floats against the golden model bitwise
// (kernels and goldens share the exact float32 operation order).
func verifyFloats(d gpu.Device, name string, addr uint32, want []float32) error {
	got, err := d.Mem().ReadFloats(addr, len(want))
	if err != nil {
		return fmt.Errorf("%s: reading output: %w", name, err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			return fmt.Errorf("%s: output[%d] = %v (%#x), want %v (%#x)",
				name, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
	return nil
}

// verifyWords compares device words against the golden model.
func verifyWords(d gpu.Device, name string, addr uint32, want []uint32) error {
	got, err := d.Mem().ReadWords(addr, len(want))
	if err != nil {
		return fmt.Errorf("%s: reading output: %w", name, err)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: output[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
	return nil
}

// dialectErr reports an unsupported vendor.
func dialectErr(name string, v gpu.Vendor) error {
	return fmt.Errorf("workloads: %s: no %s build", name, v)
}
