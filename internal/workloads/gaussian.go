package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// gaussian (Rodinia): forward Gaussian elimination of Ax = b by repeated
// Fan1/Fan2 kernel launches — Fan1 computes the column of multipliers for
// elimination step t, Fan2 applies them to the trailing submatrix and to
// the right-hand side. The host loops t = 0..n-2 launching both kernels,
// exactly like the Rodinia host code (30 launches for n=16). No shared
// memory is used, which keeps gaussian out of the paper's Fig. 2 subset.

const gaussN = 16

const gaussFan1SASSSrc = `
.kernel fan1
    S2R R0, SR_TID.X           ; row i
    SSY end
    ISETP.LE P0, R0, c[3]
@P0 BRA skip
    IMAD R1, R0, c[2], c[3]    ; i*n + t
    SHL R2, R1, 2
    IADD R2, R2, c[0]
    LDG R3, [R2]               ; a[i][t]
    MOV R4, c[3]
    IMAD R5, R4, c[2], R4      ; t*n + t
    SHL R5, R5, 2
    IADD R5, R5, c[0]
    LDG R6, [R5]               ; a[t][t]
    MUFU.RCP R7, R6
    FMUL R8, R3, R7
    SHL R9, R0, 2
    IADD R9, R9, c[1]
    STG [R9], R8               ; m[i]
skip:
    SYNC
end:
    EXIT
`

var gaussFan1SASS = sass.MustAssemble(gaussFan1SASSSrc)

const gaussFan2SASSSrc = `
.kernel fan2
    S2R R0, SR_TID.X           ; column j
    S2R R1, SR_TID.Y           ; row i
    SSY end
    ISETP.LE P0, R1, c[4]
@P0 BRA skip
    ISETP.LT P1, R0, c[4]
@P1 BRA skip
    SHL R2, R1, 2
    IADD R2, R2, c[2]
    LDG R3, [R2]               ; m[i]
    IMAD R4, R1, c[3], R0
    SHL R4, R4, 2
    IADD R4, R4, c[0]          ; &a[i][j]
    MOV R5, c[4]
    IMAD R6, R5, c[3], R0
    SHL R6, R6, 2
    IADD R6, R6, c[0]
    LDG R7, [R6]               ; a[t][j]
    LDG R8, [R4]
    FMUL R9, R3, R7
    FSUB R8, R8, R9
    STG [R4], R8
    SSY bend
    ISETP.NE P2, R0, c[4]
@P2 BRA bskip
    SHL R10, R1, 2
    IADD R10, R10, c[1]
    LDG R11, [R10]             ; b[i]
    MOV R12, c[4]
    SHL R13, R12, 2
    IADD R13, R13, c[1]
    LDG R14, [R13]             ; b[t]
    FMUL R15, R3, R14
    FSUB R11, R11, R15
    STG [R10], R11
bskip:
    SYNC
bend:
skip:
    SYNC
end:
    EXIT
`

var gaussFan2SASS = sass.MustAssemble(gaussFan2SASSSrc)

const gaussFan1SISrc = `
.kernel fan1
    s_load_dword s4, karg[0]       ; A
    s_load_dword s5, karg[1]       ; M
    s_load_dword s6, karg[2]       ; n
    s_load_dword s7, karg[3]       ; t
    v_cmp_gt_i32 vcc, v0, s7
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz end
    v_mul_i32 v2, v0, s6
    v_add_i32 v2, v2, s7
    v_lshlrev_b32 v2, 2, v2
    v_add_i32 v2, v2, s4
    buffer_load_dword v3, v2, 0    ; a[i][t]
    s_mul_i32 s8, s7, s6
    s_add_i32 s8, s8, s7
    s_lshl_b32 s8, s8, 2
    s_add_i32 s8, s8, s4
    v_mov_b32 v4, s8
    buffer_load_dword v5, v4, 0    ; a[t][t]
    v_rcp_f32 v6, v5
    v_mul_f32 v7, v3, v6
    v_lshlrev_b32 v8, 2, v0
    v_add_i32 v8, v8, s5
    buffer_store_dword v7, v8, 0
end:
    s_mov_b64 exec, s[10:11]
    s_endpgm
`

var gaussFan1SI = siasm.MustAssemble(gaussFan1SISrc)

const gaussFan2SISrc = `
.kernel fan2
    s_load_dword s4, karg[0]       ; A
    s_load_dword s5, karg[1]       ; B
    s_load_dword s6, karg[2]       ; M
    s_load_dword s7, karg[3]       ; n
    s_load_dword s8, karg[4]       ; t
    v_cmp_gt_i32 vcc, v1, s8
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz end
    v_cmp_ge_i32 vcc, v0, s8
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz end2
    v_lshlrev_b32 v2, 2, v1
    v_add_i32 v2, v2, s6
    buffer_load_dword v3, v2, 0    ; m[i]
    v_mul_i32 v4, v1, s7
    v_add_i32 v4, v4, v0
    v_lshlrev_b32 v4, 2, v4
    v_add_i32 v4, v4, s4           ; &a[i][j]
    s_mul_i32 s16, s8, s7
    v_add_i32 v5, v0, s16
    v_lshlrev_b32 v5, 2, v5
    v_add_i32 v5, v5, s4           ; &a[t][j]
    buffer_load_dword v6, v5, 0
    buffer_load_dword v7, v4, 0
    v_mul_f32 v8, v3, v6
    v_sub_f32 v7, v7, v8
    buffer_store_dword v7, v4, 0
    v_cmp_eq_i32 vcc, v0, s8
    s_and_saveexec_b64 s[18:19], vcc
    s_cbranch_execz bend
    v_lshlrev_b32 v9, 2, v1
    v_add_i32 v9, v9, s5
    buffer_load_dword v10, v9, 0   ; b[i]
    s_lshl_b32 s20, s8, 2
    s_add_i32 s20, s20, s5
    v_mov_b32 v11, s20
    buffer_load_dword v12, v11, 0  ; b[t]
    v_mul_f32 v13, v3, v12
    v_sub_f32 v10, v10, v13
    buffer_store_dword v10, v9, 0
bend:
    s_mov_b64 exec, s[18:19]
end2:
    s_mov_b64 exec, s[14:15]
end:
    s_mov_b64 exec, s[10:11]
    s_endpgm
`

var gaussFan2SI = siasm.MustAssemble(gaussFan2SISrc)

// gaussGolden runs the elimination with the kernels' exact float32 ops
// (reciprocal-multiply division), returning the final A and b.
func gaussGolden(a, b []float32, n int) ([]float32, []float32) {
	ga := make([]float32, len(a))
	gb := make([]float32, len(b))
	copy(ga, a)
	copy(gb, b)
	m := make([]float32, n)
	for t := 0; t < n-1; t++ {
		r := 1 / ga[t*n+t]
		for i := t + 1; i < n; i++ {
			m[i] = ga[i*n+t] * r
		}
		for i := t + 1; i < n; i++ {
			for j := t; j < n; j++ {
				ga[i*n+j] -= m[i] * ga[t*n+j]
			}
			gb[i] -= m[i] * gb[t]
		}
	}
	return ga, gb
}

func newGaussian(v gpu.Vendor) (*gpu.HostProgram, error) {
	const n = gaussN
	rng := stats.NewRNG(0x5eed0003)
	a := randFloats(rng, n*n, -1, 1)
	// Make the matrix diagonally dominant so elimination stays stable.
	for i := 0; i < n; i++ {
		a[i*n+i] += float32(n)
	}
	b := randFloats(rng, n, -1, 1)
	wantA, wantB := gaussGolden(a, b, n)

	var addrA, addrB uint32
	hp := &gpu.HostProgram{Name: "gaussian"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		var err error
		if addrA, err = mem.AllocFloats(a); err != nil {
			return err
		}
		if addrB, err = mem.AllocFloats(b); err != nil {
			return err
		}
		addrM, err := mem.Alloc(4 * n)
		if err != nil {
			return err
		}
		for t := 0; t < n-1; t++ {
			var fan1, fan2 gpu.LaunchSpec
			switch v {
			case gpu.NVIDIA:
				fan1 = gpu.LaunchSpec{
					Kernel: gaussFan1SASS, Grid: gpu.D1(1), Group: gpu.D1(n),
					Args: []uint32{addrA, addrM, n, uint32(t)},
				}
				fan2 = gpu.LaunchSpec{
					Kernel: gaussFan2SASS, Grid: gpu.D1(1), Group: gpu.D2(n, n),
					Args: []uint32{addrA, addrB, addrM, n, uint32(t)},
				}
			case gpu.AMD:
				fan1 = gpu.LaunchSpec{
					Kernel: gaussFan1SI, Grid: gpu.D1(1), Group: gpu.D1(n),
					Args: []uint32{addrA, addrM, n, uint32(t)},
				}
				fan2 = gpu.LaunchSpec{
					Kernel: gaussFan2SI, Grid: gpu.D1(1), Group: gpu.D2(n, n),
					Args: []uint32{addrA, addrB, addrM, n, uint32(t)},
				}
			default:
				return dialectErr("gaussian", v)
			}
			if err := d.Launch(fan1); err != nil {
				return err
			}
			if err := d.Launch(fan2); err != nil {
				return err
			}
		}
		return nil
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{
			{Addr: addrA, Size: 4 * n * n},
			{Addr: addrB, Size: 4 * n},
		}
	}
	hp.Verify = func(d gpu.Device) error {
		if err := verifyFloats(d, "gaussian(A)", addrA, wantA); err != nil {
			return err
		}
		return verifyFloats(d, "gaussian(b)", addrB, wantB)
	}
	return hp, nil
}
