package workloads

import (
	"testing"

	"repro/internal/amdsim"
	"repro/internal/chips"
	"repro/internal/gpu"
	"repro/internal/nvsim"
)

func miniDevice(t *testing.T, v gpu.Vendor) gpu.Device {
	t.Helper()
	switch v {
	case gpu.NVIDIA:
		d, err := nvsim.New(chips.MiniNVIDIA())
		if err != nil {
			t.Fatal(err)
		}
		return d
	default:
		d, err := amdsim.New(chips.MiniAMD())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
}

// TestAllBenchmarksVerify runs every benchmark in both ISA dialects and
// checks the device output against the CPU golden model bit-for-bit.
func TestAllBenchmarksVerify(t *testing.T) {
	for _, b := range All() {
		for _, v := range []gpu.Vendor{gpu.NVIDIA, gpu.AMD} {
			b, v := b, v
			t.Run(b.Name+"/"+v.String(), func(t *testing.T) {
				hp, err := b.New(v)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				d := miniDevice(t, v)
				if err := hp.Run(d); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if err := hp.Verify(d); err != nil {
					t.Fatalf("Verify: %v", err)
				}
				if len(hp.Outputs()) == 0 {
					t.Fatal("no output regions")
				}
				st := d.Stats()
				if st.Cycles <= 0 || st.Instructions <= 0 {
					t.Fatalf("implausible stats: %+v", st)
				}
			})
		}
	}
}

// TestLocalMemorySubset checks the Fig. 2 membership matches the paper:
// exactly backprop, dwtHaar1D, histogram, matrixMul, reduction, scan,
// transpose.
func TestLocalMemorySubset(t *testing.T) {
	want := map[string]bool{
		"backprop": true, "dwtHaar1D": true, "histogram": true,
		"matrixMul": true, "reduction": true, "scan": true, "transpose": true,
	}
	sub := LocalMemorySubset()
	if len(sub) != len(want) {
		t.Fatalf("subset size %d, want %d", len(sub), len(want))
	}
	for _, b := range sub {
		if !want[b.Name] {
			t.Fatalf("unexpected local-memory benchmark %s", b.Name)
		}
		hp, err := b.New(gpu.NVIDIA)
		if err != nil {
			t.Fatal(err)
		}
		if hp.Name != b.Name {
			t.Fatalf("host program name %q != benchmark name %q", hp.Name, b.Name)
		}
	}
}

// TestLocalUsersDeclareShared cross-checks UsesLocal against the kernels'
// actual shared-memory footprints.
func TestLocalUsersDeclareShared(t *testing.T) {
	progs := map[string]gpu.Kernel{
		"backprop": backpropSASS, "dwtHaar1D": dwtSASS, "gaussian": gaussFan1SASS,
		"histogram": histogramSASS, "kmeans": kmeansSASS, "matrixMul": matrixMulSASS,
		"reduction": reductionSASS, "scan": scanSASS, "transpose": transposeSASS,
		"vectoradd": vectorAddSASS,
	}
	for _, b := range All() {
		k := progs[b.Name]
		if k == nil {
			t.Fatalf("no kernel table entry for %s", b.Name)
		}
		hasShared := k.LocalBytesPerGroup() > 0
		if hasShared != b.UsesLocal {
			t.Errorf("%s: UsesLocal=%v but kernel shared bytes=%d",
				b.Name, b.UsesLocal, k.LocalBytesPerGroup())
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("matrixMul"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestDeterministicRuns: two runs on fresh devices produce bit-identical
// output regions (the foundation of the FI golden comparison).
func TestDeterministicRuns(t *testing.T) {
	for _, v := range []gpu.Vendor{gpu.NVIDIA, gpu.AMD} {
		b, err := ByName("reduction")
		if err != nil {
			t.Fatal(err)
		}
		hp, err := b.New(v)
		if err != nil {
			t.Fatal(err)
		}
		read := func() ([]byte, int64) {
			d := miniDevice(t, v)
			if err := hp.Run(d); err != nil {
				t.Fatal(err)
			}
			var all []byte
			for _, r := range hp.Outputs() {
				bs, err := d.Mem().ReadBytes(r.Addr, int(r.Size))
				if err != nil {
					t.Fatal(err)
				}
				all = append(all, bs...)
			}
			return all, d.Stats().Cycles
		}
		b1, c1 := read()
		b2, c2 := read()
		if string(b1) != string(b2) {
			t.Fatalf("%v: runs differ", v)
		}
		if c1 != c2 {
			t.Fatalf("%v: cycle counts differ: %d vs %d", v, c1, c2)
		}
	}
}
