package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// transpose: the SDK tiled matrix transpose. Each 8x8 thread block stages
// a tile through shared memory / LDS so that both the global read and the
// global write are coalesced; the shared tile is read back transposed.

const (
	transposeDim  = 64 // square matrix edge
	transposeTile = 8
)

const transposeSASSSrc = `
.kernel transpose
.shared 256                    ; 8*8*4 tile
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    MOV R4, 8
    IMAD R5, R2, R4, R0        ; x = bx*8+tx
    IMAD R6, R3, R4, R1        ; y = by*8+ty
    IMAD R7, R6, c[2], R5      ; y*w + x
    SHL R7, R7, 2
    IADD R7, R7, c[0]
    LDG R8, [R7]
    IMAD R9, R1, R4, R0        ; ty*8+tx
    SHL R9, R9, 2
    STS [R9], R8
    BAR.SYNC
    IMAD R10, R3, R4, R0       ; xo = by*8+tx
    IMAD R11, R2, R4, R1       ; yo = bx*8+ty
    IMAD R12, R0, R4, R1       ; tx*8+ty
    SHL R12, R12, 2
    LDS R13, [R12]
    IMAD R14, R11, c[2], R10   ; yo*w + xo
    SHL R14, R14, 2
    IADD R14, R14, c[1]
    STG [R14], R13
    EXIT
`

var transposeSASS = sass.MustAssemble(transposeSASSSrc)

const transposeSISrc = `
.kernel transpose
.lds 256
    s_load_dword s4, karg[0]       ; IN
    s_load_dword s5, karg[1]       ; OUT
    s_load_dword s6, karg[2]       ; width
    s_lshl_b32 s14, s12, 3         ; bx*8
    s_lshl_b32 s15, s13, 3         ; by*8
    v_add_i32 v2, v0, s14          ; x
    v_add_i32 v3, v1, s15          ; y
    v_mul_i32 v4, v3, s6
    v_add_i32 v4, v4, v2
    v_lshlrev_b32 v4, 2, v4
    v_add_i32 v4, v4, s4
    buffer_load_dword v5, v4, 0
    v_lshlrev_b32 v6, 3, v1        ; ty*8
    v_add_i32 v6, v6, v0
    v_lshlrev_b32 v6, 2, v6
    ds_write_b32 v6, v5, 0
    s_barrier
    v_add_i32 v7, v0, s15          ; xo = by*8+tx
    v_add_i32 v8, v1, s14          ; yo = bx*8+ty
    v_lshlrev_b32 v9, 3, v0        ; tx*8
    v_add_i32 v9, v9, v1
    v_lshlrev_b32 v9, 2, v9
    ds_read_b32 v10, v9, 0
    v_mul_i32 v11, v8, s6
    v_add_i32 v11, v11, v7
    v_lshlrev_b32 v11, 2, v11
    v_add_i32 v11, v11, s5
    buffer_store_dword v10, v11, 0
    s_endpgm
`

var transposeSI = siasm.MustAssemble(transposeSISrc)

func newTranspose(v gpu.Vendor) (*gpu.HostProgram, error) {
	const w = transposeDim
	rng := stats.NewRNG(0x5eed0009)
	in := randFloats(rng, w*w, -10, 10)
	want := make([]float32, w*w)
	for y := 0; y < w; y++ {
		for x := 0; x < w; x++ {
			want[x*w+y] = in[y*w+x]
		}
	}

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "transpose"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrIn, err := mem.AllocFloats(in)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * w * w)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D2(w/transposeTile, w/transposeTile),
			Group: gpu.D2(transposeTile, transposeTile),
			Args:  []uint32{addrIn, outAddr, w},
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = transposeSASS
		case gpu.AMD:
			spec.Kernel = transposeSI
		default:
			return dialectErr("transpose", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * w * w}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, "transpose", outAddr, want)
	}
	return hp, nil
}
