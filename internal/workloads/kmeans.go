package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// kmeans (Rodinia): the cluster-assignment kernel. Each thread owns one
// point, scans all k centroids accumulating squared Euclidean distance
// over the feature dimensions, and records the argmin label. The
// branch-free best-update (SEL on NVIDIA, v_cndmask on AMD) keeps the
// comparison order identical across dialects: strict less-than, ties keep
// the lower centroid index.

const (
	kmPoints = 1024
	kmDims   = 4
	kmK      = 8
	kmGroup  = 128
)

const kmeansSASSSrc = `
.kernel kmeans
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0        ; pid
    ISETP.GE P0, R3, c[3]
@P0 EXIT
    MOV R4, 0                  ; best index
    MOV R5, 0x7F7FFFFF         ; best distance = +FLT_MAX
    MOV R6, 0                  ; centroid c
cl:
    MOV R7, 0                  ; distance acc
    MOV R8, 0                  ; dim
dl:
    IMAD R9, R3, c[4], R8
    SHL R9, R9, 2
    IADD R9, R9, c[0]
    LDG R10, [R9]              ; point[pid][dim]
    IMAD R11, R6, c[4], R8
    SHL R11, R11, 2
    IADD R11, R11, c[1]
    LDG R12, [R11]             ; centroid[c][dim]
    FSUB R13, R10, R12
    FMUL R13, R13, R13
    FADD R7, R7, R13
    IADD R8, R8, 1
    ISETP.LT P1, R8, c[4]
@P1 BRA dl
    FSETP.LT P2, R7, R5
    SEL R5, R7, R5, P2
    SEL R4, R6, R4, P2
    IADD R6, R6, 1
    ISETP.LT P3, R6, c[5]
@P3 BRA cl
    SHL R14, R3, 2
    IADD R14, R14, c[2]
    STG [R14], R4
    EXIT
`

var kmeansSASS = sass.MustAssemble(kmeansSASSSrc)

const kmeansSISrc = `
.kernel kmeans
    s_load_dword s4, karg[0]       ; POINTS
    s_load_dword s5, karg[1]       ; CENTROIDS
    s_load_dword s6, karg[2]       ; LABELS
    s_load_dword s7, karg[3]       ; n
    s_load_dword s8, karg[4]       ; dims
    s_load_dword s9, karg[5]       ; k
    s_load_dword s10, karg[6]      ; group size
    s_mul_i32 s11, s12, s10
    v_add_i32 v2, v0, s11          ; pid
    v_cmp_lt_i32 vcc, v2, s7
    s_and_saveexec_b64 s[14:15], vcc
    s_cbranch_execz end
    v_mov_b32 v3, 0                ; best index
    v_mov_b32 v4, 0x7F7FFFFF       ; best distance
    s_mov_b32 s16, 0               ; centroid c
cl:
    v_mov_b32 v5, 0                ; distance acc
    s_mov_b32 s17, 0               ; dim
dl:
    v_mul_i32 v6, v2, s8
    v_add_i32 v6, v6, s17
    v_lshlrev_b32 v6, 2, v6
    v_add_i32 v6, v6, s4
    buffer_load_dword v7, v6, 0
    s_mul_i32 s18, s16, s8
    s_add_i32 s19, s18, s17
    s_lshl_b32 s19, s19, 2
    s_add_i32 s19, s19, s5
    v_mov_b32 v8, s19
    buffer_load_dword v9, v8, 0
    v_sub_f32 v10, v7, v9
    v_mul_f32 v10, v10, v10
    v_add_f32 v5, v5, v10
    s_add_i32 s17, s17, 1
    s_cmp_lt_i32 s17, s8
    s_cbranch_scc1 dl
    v_cmp_lt_f32 vcc, v5, v4
    v_cndmask_b32 v4, v4, v5, vcc
    v_mov_b32 v11, s16
    v_cndmask_b32 v3, v3, v11, vcc
    s_add_i32 s16, s16, 1
    s_cmp_lt_i32 s16, s9
    s_cbranch_scc1 cl
    v_lshlrev_b32 v12, 2, v2
    v_add_i32 v12, v12, s6
    buffer_store_dword v3, v12, 0
end:
    s_mov_b64 exec, s[14:15]
    s_endpgm
`

var kmeansSI = siasm.MustAssemble(kmeansSISrc)

// kmeansGolden replicates the kernel's accumulation and strict-less-than
// argmin update.
func kmeansGolden(points, centroids []float32) []uint32 {
	labels := make([]uint32, kmPoints)
	const maxFloat = float32(3.4028234663852886e+38) // 0x7F7FFFFF
	for p := 0; p < kmPoints; p++ {
		best := uint32(0)
		bestD := maxFloat
		for c := 0; c < kmK; c++ {
			var acc float32
			for d := 0; d < kmDims; d++ {
				diff := points[p*kmDims+d] - centroids[c*kmDims+d]
				acc += diff * diff
			}
			if acc < bestD {
				bestD = acc
				best = uint32(c)
			}
		}
		labels[p] = best
	}
	return labels
}

func newKMeans(v gpu.Vendor) (*gpu.HostProgram, error) {
	rng := stats.NewRNG(0x5eed0005)
	points := randFloats(rng, kmPoints*kmDims, -5, 5)
	centroids := randFloats(rng, kmK*kmDims, -5, 5)
	want := kmeansGolden(points, centroids)

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "kmeans"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrP, err := mem.AllocFloats(points)
		if err != nil {
			return err
		}
		addrC, err := mem.AllocFloats(centroids)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * kmPoints)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D1(kmPoints / kmGroup),
			Group: gpu.D1(kmGroup),
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = kmeansSASS
			spec.Args = []uint32{addrP, addrC, outAddr, kmPoints, kmDims, kmK}
		case gpu.AMD:
			spec.Kernel = kmeansSI
			spec.Args = []uint32{addrP, addrC, outAddr, kmPoints, kmDims, kmK, kmGroup}
		default:
			return dialectErr("kmeans", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * kmPoints}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyWords(d, "kmeans", outAddr, want)
	}
	return hp, nil
}
