package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// matrixMul: the SDK shared-memory tiled matrix multiplication
// C[M x N] = A[M x K] * B[K x N] with 8x8 tiles staged through shared
// memory / LDS; the inner product accumulates as mul-then-add so the CPU
// golden can replicate the float32 rounding exactly.

const (
	matMulM    = 32
	matMulK    = 32
	matMulN    = 32
	matMulTile = 8
)

const matrixMulSASSSrc = `
.kernel matrixMul
.shared 512                    ; As tile at 0, Bs tile at 256
    S2R R0, SR_TID.X
    S2R R1, SR_TID.Y
    S2R R2, SR_CTAID.X
    S2R R3, SR_CTAID.Y
    MOV R4, 8
    IMAD R5, R3, R4, R1        ; row = by*8+ty
    IMAD R6, R2, R4, R0        ; col = bx*8+tx
    MOV R7, 0                  ; acc
    MOV R8, 0                  ; tile index t
    MOV R9, c[3]
    SHR R9, R9, 3              ; tiles = K/8
tloop:
    SHL R10, R8, 3             ; t*8
    IADD R11, R10, R0          ; t*8+tx
    IMAD R12, R5, c[3], R11    ; row*K + t*8+tx
    SHL R12, R12, 2
    IADD R12, R12, c[0]
    LDG R13, [R12]
    IMAD R14, R1, R4, R0       ; ty*8+tx
    SHL R14, R14, 2
    STS [R14], R13             ; As[ty][tx]
    IADD R15, R10, R1          ; t*8+ty
    IMAD R16, R15, c[4], R6    ; (t*8+ty)*N + col
    SHL R16, R16, 2
    IADD R16, R16, c[1]
    LDG R17, [R16]
    STS [R14+256], R17         ; Bs[ty][tx]
    BAR.SYNC
    MOV R18, 0                 ; k
kloop:
    IMAD R19, R1, R4, R18      ; ty*8+k
    SHL R19, R19, 2
    LDS R20, [R19]
    IMAD R21, R18, R4, R0      ; k*8+tx
    SHL R21, R21, 2
    LDS R22, [R21+256]
    FMUL R23, R20, R22
    FADD R7, R7, R23
    IADD R18, R18, 1
    ISETP.LT P0, R18, 8
@P0 BRA kloop
    BAR.SYNC
    IADD R8, R8, 1
    ISETP.LT P1, R8, R9
@P1 BRA tloop
    IMAD R24, R5, c[4], R6
    SHL R24, R24, 2
    IADD R24, R24, c[2]
    STG [R24], R7
    EXIT
`

var matrixMulSASS = sass.MustAssemble(matrixMulSASSSrc)

const matrixMulSISrc = `
.kernel matrixMul
.lds 512
    s_load_dword s4, karg[0]       ; A
    s_load_dword s5, karg[1]       ; B
    s_load_dword s6, karg[2]       ; C
    s_load_dword s7, karg[3]       ; K
    s_load_dword s8, karg[4]       ; N
    v_mov_b32 v2, s13
    v_lshlrev_b32 v2, 3, v2
    v_add_i32 v2, v2, v1           ; row = by*8+ty
    v_mov_b32 v3, s12
    v_lshlrev_b32 v3, 3, v3
    v_add_i32 v3, v3, v0           ; col = bx*8+tx
    v_mov_b32 v4, 0                ; acc
    s_mov_b32 s9, 0                ; tile t
    s_lshr_b32 s10, s7, 3          ; tiles = K/8
tloop:
    s_lshl_b32 s11, s9, 3          ; t*8
    v_add_i32 v5, v0, s11          ; t*8+tx
    v_mul_i32 v6, v2, s7
    v_add_i32 v6, v6, v5
    v_lshlrev_b32 v6, 2, v6
    v_add_i32 v6, v6, s4
    buffer_load_dword v7, v6, 0
    v_lshlrev_b32 v8, 3, v1
    v_add_i32 v8, v8, v0
    v_lshlrev_b32 v8, 2, v8        ; (ty*8+tx)*4
    ds_write_b32 v8, v7, 0
    v_add_i32 v9, v1, s11          ; t*8+ty
    v_mul_i32 v10, v9, s8
    v_add_i32 v10, v10, v3
    v_lshlrev_b32 v10, 2, v10
    v_add_i32 v10, v10, s5
    buffer_load_dword v11, v10, 0
    ds_write_b32 v8, v11, 256
    s_barrier
    s_mov_b32 s14, 0               ; k
kloop:
    v_lshlrev_b32 v12, 3, v1
    v_add_i32 v12, v12, s14
    v_lshlrev_b32 v12, 2, v12
    ds_read_b32 v13, v12, 0        ; As[ty][k]
    s_lshl_b32 s15, s14, 3
    v_add_i32 v14, v0, s15
    v_lshlrev_b32 v14, 2, v14
    ds_read_b32 v15, v14, 256      ; Bs[k][tx]
    v_mul_f32 v16, v13, v15
    v_add_f32 v4, v4, v16
    s_add_i32 s14, s14, 1
    s_cmp_lt_i32 s14, 8
    s_cbranch_scc1 kloop
    s_barrier
    s_add_i32 s9, s9, 1
    s_cmp_lt_i32 s9, s10
    s_cbranch_scc1 tloop
    v_mul_i32 v17, v2, s8
    v_add_i32 v17, v17, v3
    v_lshlrev_b32 v17, 2, v17
    v_add_i32 v17, v17, s6
    buffer_store_dword v4, v17, 0
    s_endpgm
`

var matrixMulSI = siasm.MustAssemble(matrixMulSISrc)

// matrixMulGolden accumulates in the kernel's exact order: sequential over
// k with separate float32 multiply and add.
func matrixMulGolden(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for row := 0; row < m; row++ {
		for col := 0; col < n; col++ {
			var acc float32
			for kk := 0; kk < k; kk++ {
				p := a[row*k+kk] * b[kk*n+col]
				acc += p
			}
			out[row*n+col] = acc
		}
	}
	return out
}

func newMatrixMul(v gpu.Vendor) (*gpu.HostProgram, error) {
	rng := stats.NewRNG(0x5eed0006)
	a := randFloats(rng, matMulM*matMulK, -1, 1)
	b := randFloats(rng, matMulK*matMulN, -1, 1)
	want := matrixMulGolden(a, b, matMulM, matMulK, matMulN)

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "matrixMul"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrA, err := mem.AllocFloats(a)
		if err != nil {
			return err
		}
		addrB, err := mem.AllocFloats(b)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * matMulM * matMulN)
		if err != nil {
			return err
		}
		spec := gpu.LaunchSpec{
			Grid:  gpu.D2(matMulN/matMulTile, matMulM/matMulTile),
			Group: gpu.D2(matMulTile, matMulTile),
			Args:  []uint32{addrA, addrB, outAddr, matMulK, matMulN},
		}
		switch v {
		case gpu.NVIDIA:
			spec.Kernel = matrixMulSASS
		case gpu.AMD:
			spec.Kernel = matrixMulSI
		default:
			return dialectErr("matrixMul", v)
		}
		return d.Launch(spec)
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * matMulM * matMulN}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, "matrixMul", outAddr, want)
	}
	return hp, nil
}
