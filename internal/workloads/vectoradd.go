package workloads

import (
	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/siasm"
	"repro/internal/stats"
)

// vectoradd: C[i] = A[i] + B[i], the canonical SDK quickstart kernel.
// It is the only benchmark without any data reuse, so it exercises the
// guard-and-stream pattern (boundary-divergent tail warp included: n is
// deliberately not a multiple of the block size).

const vectorAddN = 3000
const vectorAddGroup = 128

const vectorAddSASSSrc = `
.kernel vectoradd
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0       ; gid
    ISETP.GE P0, R3, c[3]
@P0 EXIT
    SHL R4, R3, 2
    IADD R5, R4, c[0]
    LDG R6, [R5]
    IADD R7, R4, c[1]
    LDG R8, [R7]
    FADD R9, R6, R8
    IADD R10, R4, c[2]
    STG [R10], R9
    EXIT
`

var vectorAddSASS = sass.MustAssemble(vectorAddSASSSrc)

const vectorAddSISrc = `
.kernel vectoradd
    s_load_dword s4, karg[0]       ; A
    s_load_dword s5, karg[1]       ; B
    s_load_dword s6, karg[2]       ; OUT
    s_load_dword s7, karg[3]       ; n
    s_load_dword s8, karg[4]       ; group size
    s_mul_i32 s9, s12, s8
    v_add_i32 v2, v0, s9           ; gid
    v_cmp_lt_i32 vcc, v2, s7
    s_and_saveexec_b64 s[10:11], vcc
    s_cbranch_execz done
    v_lshlrev_b32 v3, 2, v2
    v_add_i32 v4, v3, s4
    buffer_load_dword v5, v4, 0
    v_add_i32 v6, v3, s5
    buffer_load_dword v7, v6, 0
    v_add_f32 v8, v5, v7
    v_add_i32 v9, v3, s6
    buffer_store_dword v8, v9, 0
done:
    s_mov_b64 exec, s[10:11]
    s_endpgm
`

var vectorAddSI = siasm.MustAssemble(vectorAddSISrc)

func newVectorAdd(v gpu.Vendor) (*gpu.HostProgram, error) {
	const n = vectorAddN
	rng := stats.NewRNG(0x5eed0001)
	a := randFloats(rng, n, -4, 4)
	b := randFloats(rng, n, -4, 4)
	want := make([]float32, n)
	for i := range want {
		want[i] = a[i] + b[i]
	}

	var outAddr uint32
	hp := &gpu.HostProgram{Name: "vectoradd"}
	hp.Run = func(d gpu.Device) error {
		mem := d.Mem()
		addrA, err := mem.AllocFloats(a)
		if err != nil {
			return err
		}
		addrB, err := mem.AllocFloats(b)
		if err != nil {
			return err
		}
		outAddr, err = mem.Alloc(4 * n)
		if err != nil {
			return err
		}
		grid := gpu.D1((n + vectorAddGroup - 1) / vectorAddGroup)
		group := gpu.D1(vectorAddGroup)
		switch v {
		case gpu.NVIDIA:
			return d.Launch(gpu.LaunchSpec{
				Kernel: vectorAddSASS, Grid: grid, Group: group,
				Args: []uint32{addrA, addrB, outAddr, n},
			})
		case gpu.AMD:
			return d.Launch(gpu.LaunchSpec{
				Kernel: vectorAddSI, Grid: grid, Group: group,
				Args: []uint32{addrA, addrB, outAddr, n, vectorAddGroup},
			})
		default:
			return dialectErr("vectoradd", v)
		}
	}
	hp.Outputs = func() []gpu.Region {
		return []gpu.Region{{Addr: outAddr, Size: 4 * n}}
	}
	hp.Verify = func(d gpu.Device) error {
		return verifyFloats(d, "vectoradd", outAddr, want)
	}
	return hp, nil
}
