// Package sass defines the SASS-like low-level ISA executed by the NVIDIA
// simulator (nvsim) together with its textual assembler and disassembler.
//
// The paper's GUFI tool deliberately analyses SASS — the binary ISA that
// runs on the real register file — rather than PTX, so that injected
// faults land on actual hardware registers. This package plays the same
// role: workloads are written in this assembly, the assembler resolves
// them to decoded instructions, and nvsim executes them at warp
// granularity with per-thread architectural registers R0..R254 (RZ is the
// hardwired zero register), predicate registers P0..P5 (PT is hardwired
// true), a SIMT reconvergence stack driven by SSY/SYNC, shared memory
// (LDS/STS), global memory (LDG/STG), block barriers (BAR.SYNC) and
// constant-bank kernel parameters (c[n]).
package sass

import (
	"fmt"
	"math"
	"strings"
)

// Opcode enumerates the SASS-like instruction set.
type Opcode int

// Instruction opcodes.
const (
	OpNOP   Opcode = iota
	OpMOV          // MOV Rd, src
	OpS2R          // S2R Rd, SR_*
	OpIADD         // IADD Rd, Ra, src
	OpISUB         // ISUB Rd, Ra, src
	OpIMUL         // IMUL Rd, Ra, src (low 32 bits, signed)
	OpIMIN         // IMIN Rd, Ra, src (signed)
	OpIMAX         // IMAX Rd, Ra, src (signed)
	OpAND          // AND Rd, Ra, src
	OpOR           // OR Rd, Ra, src
	OpXOR          // XOR Rd, Ra, src
	OpSHL          // SHL Rd, Ra, src
	OpSHR          // SHR Rd, Ra, src (logical)
	OpIMAD         // IMAD Rd, Ra, src, src (Rd = Ra*b + c)
	OpFADD         // FADD Rd, Ra, src
	OpFSUB         // FSUB Rd, Ra, src
	OpFMUL         // FMUL Rd, Ra, src
	OpFMIN         // FMIN Rd, Ra, src
	OpFMAX         // FMAX Rd, Ra, src
	OpFFMA         // FFMA Rd, Ra, src, src (Rd = Ra*b + c, fused)
	OpRCP          // MUFU.RCP Rd, src
	OpEX2          // MUFU.EX2 Rd, src (2^x)
	OpLG2          // MUFU.LG2 Rd, src (log2 x)
	OpSQRT         // MUFU.SQRT Rd, src
	OpI2F          // I2F Rd, src (signed int -> float)
	OpF2I          // F2I Rd, src (float -> signed int, truncate)
	OpISETP        // ISETP.cc Pd, Ra, src (signed compare)
	OpFSETP        // FSETP.cc Pd, Ra, src
	OpSEL          // SEL Rd, Ra, src, Pq (Rd = Pq ? Ra : src)
	OpBRA          // BRA label
	OpSSY          // SSY label (push reconvergence point)
	OpSYNC         // SYNC (pop SIMT stack)
	OpBAR          // BAR.SYNC
	OpLDG          // LDG Rd, [Ra+off] (global load)
	OpSTG          // STG [Ra+off], Rb (global store)
	OpLDS          // LDS Rd, [Ra+off] (shared load)
	OpSTS          // STS [Ra+off], Rb (shared store)
	OpEXIT         // EXIT
	opcodeCount
)

var opNames = [...]string{
	OpNOP: "NOP", OpMOV: "MOV", OpS2R: "S2R",
	OpIADD: "IADD", OpISUB: "ISUB", OpIMUL: "IMUL",
	OpIMIN: "IMIN", OpIMAX: "IMAX",
	OpAND: "AND", OpOR: "OR", OpXOR: "XOR", OpSHL: "SHL", OpSHR: "SHR",
	OpIMAD: "IMAD",
	OpFADD: "FADD", OpFSUB: "FSUB", OpFMUL: "FMUL",
	OpFMIN: "FMIN", OpFMAX: "FMAX", OpFFMA: "FFMA",
	OpRCP: "MUFU.RCP", OpEX2: "MUFU.EX2", OpLG2: "MUFU.LG2", OpSQRT: "MUFU.SQRT",
	OpI2F: "I2F", OpF2I: "F2I",
	OpISETP: "ISETP", OpFSETP: "FSETP", OpSEL: "SEL",
	OpBRA: "BRA", OpSSY: "SSY", OpSYNC: "SYNC", OpBAR: "BAR.SYNC",
	OpLDG: "LDG", OpSTG: "STG", OpLDS: "LDS", OpSTS: "STS",
	OpEXIT: "EXIT",
}

// String returns the canonical mnemonic.
func (o Opcode) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Class groups opcodes by execution resource for the timing model.
type Class int

// Timing classes.
const (
	ClassALU Class = iota
	ClassSFU
	ClassLocalMem
	ClassGlobalMem
	ClassControl
	ClassBarrier
)

// OpClass returns the timing class of an opcode.
func OpClass(o Opcode) Class {
	switch o {
	case OpRCP, OpEX2, OpLG2, OpSQRT:
		return ClassSFU
	case OpLDS, OpSTS:
		return ClassLocalMem
	case OpLDG, OpSTG:
		return ClassGlobalMem
	case OpBRA, OpSSY, OpSYNC, OpEXIT:
		return ClassControl
	case OpBAR:
		return ClassBarrier
	default:
		return ClassALU
	}
}

// Cmp is a comparison condition for ISETP/FSETP.
type Cmp int

// Comparison conditions.
const (
	CmpLT Cmp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

var cmpNames = [...]string{"LT", "LE", "GT", "GE", "EQ", "NE"}

// String returns the condition suffix.
func (c Cmp) String() string {
	if c >= 0 && int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("Cmp(%d)", int(c))
}

// EvalI applies the condition to two signed 32-bit integers.
func (c Cmp) EvalI(a, b int32) bool {
	switch c {
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpEQ:
		return a == b
	default:
		return a != b
	}
}

// EvalF applies the condition to two float32 values (NaN compares false
// except for NE, as in IEEE-754 unordered comparison).
func (c Cmp) EvalF(a, b float32) bool {
	if a != a || b != b { // NaN
		return c == CmpNE
	}
	switch c {
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpEQ:
		return a == b
	default:
		return a != b
	}
}

// Special register identifiers for S2R.
type SpecialReg int

// Special registers exposing launch geometry to threads.
const (
	SRTidX SpecialReg = iota
	SRTidY
	SRCtaidX
	SRCtaidY
	SRNTidX
	SRNTidY
	SRNCtaidX
	SRNCtaidY
	SRLaneID
	SRWarpID
)

var srNames = [...]string{
	"SR_TID.X", "SR_TID.Y", "SR_CTAID.X", "SR_CTAID.Y",
	"SR_NTID.X", "SR_NTID.Y", "SR_NCTAID.X", "SR_NCTAID.Y",
	"SR_LANEID", "SR_WARPID",
}

// String returns the special register name.
func (s SpecialReg) String() string {
	if s >= 0 && int(s) < len(srNames) {
		return srNames[s]
	}
	return fmt.Sprintf("SR(%d)", int(s))
}

// Register indices. RZ is encoded as 255 and always reads zero.
const (
	// RZ is the hardwired zero register index.
	RZ = 255
	// PT is the hardwired true predicate index.
	PT = 7
	// MaxRegs is the maximum number of allocatable per-thread registers.
	MaxRegs = 128
	// NumPreds is the number of allocatable predicate registers.
	NumPreds = 6
)

// OperandKind discriminates instruction source operands.
type OperandKind int

// Operand kinds.
const (
	// OperandNone marks an unused operand slot.
	OperandNone OperandKind = iota
	// OperandReg is an architectural register Rn (or RZ).
	OperandReg
	// OperandImm is a 32-bit immediate.
	OperandImm
	// OperandConst is a kernel parameter word in the constant bank, c[n].
	OperandConst
)

// Operand is one instruction source.
type Operand struct {
	Kind OperandKind
	Reg  uint8  // register index for OperandReg
	Imm  uint32 // immediate bits for OperandImm
	CIdx uint16 // constant-bank word index for OperandConst
}

// R builds a register operand.
func R(idx int) Operand { return Operand{Kind: OperandReg, Reg: uint8(idx)} }

// Imm builds an integer immediate operand.
func Imm(v uint32) Operand { return Operand{Kind: OperandImm, Imm: v} }

// ImmF builds a float immediate operand.
func ImmF(v float32) Operand { return Operand{Kind: OperandImm, Imm: math.Float32bits(v)} }

// C builds a constant-bank operand.
func C(idx int) Operand { return Operand{Kind: OperandConst, CIdx: uint16(idx)} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OperandReg:
		if o.Reg == RZ {
			return "RZ"
		}
		return fmt.Sprintf("R%d", o.Reg)
	case OperandImm:
		return fmt.Sprintf("0x%x", o.Imm)
	case OperandConst:
		return fmt.Sprintf("c[%d]", o.CIdx)
	default:
		return "?"
	}
}

// Guard is the predication guard of an instruction (@Pn or @!Pn).
type Guard struct {
	Pred uint8 // predicate index, PT for unguarded
	Neg  bool
}

// Unguarded reports whether the guard is the constant-true @PT.
func (g Guard) Unguarded() bool { return g.Pred == PT && !g.Neg }

// String renders the guard prefix (empty when unguarded).
func (g Guard) String() string {
	if g.Unguarded() {
		return ""
	}
	n := ""
	if g.Neg {
		n = "!"
	}
	if g.Pred == PT {
		return fmt.Sprintf("@%sPT ", n)
	}
	return fmt.Sprintf("@%sP%d ", n, g.Pred)
}

// Instr is one decoded instruction.
type Instr struct {
	Op    Opcode
	Guard Guard
	Cmp   Cmp        // ISETP/FSETP condition
	SR    SpecialReg // S2R source
	Dst   uint8      // destination register (RZ when unused)
	PDst  uint8      // destination predicate (ISETP/FSETP)
	PSrc  uint8      // predicate source (SEL)
	Src   [3]Operand
	// MemBase/MemOff describe the [Rb + off] address of LDG/STG/LDS/STS.
	MemBase uint8
	MemOff  int32
	// Target is the resolved branch/SSY destination instruction index.
	Target int
	// Line is the 1-based source line, for diagnostics.
	Line int
}

// String disassembles the instruction (branch targets print as indices).
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Guard.String())
	switch in.Op {
	case OpNOP, OpSYNC, OpBAR, OpEXIT:
		b.WriteString(in.Op.String())
	case OpBRA, OpSSY:
		fmt.Fprintf(&b, "%s @%d", in.Op, in.Target)
	case OpS2R:
		fmt.Fprintf(&b, "S2R R%d, %s", in.Dst, in.SR)
	case OpISETP, OpFSETP:
		fmt.Fprintf(&b, "%s.%s P%d, %s, %s", in.Op, in.Cmp, in.PDst, in.Src[0], in.Src[1])
	case OpSEL:
		p := "PT"
		if in.PSrc != PT {
			p = fmt.Sprintf("P%d", in.PSrc)
		}
		fmt.Fprintf(&b, "SEL R%d, %s, %s, %s", in.Dst, in.Src[0], in.Src[1], p)
	case OpLDG, OpLDS:
		fmt.Fprintf(&b, "%s R%d, [%s%+d]", in.Op, in.Dst, regName(in.MemBase), in.MemOff)
	case OpSTG, OpSTS:
		fmt.Fprintf(&b, "%s [%s%+d], %s", in.Op, regName(in.MemBase), in.MemOff, in.Src[0])
	case OpIMAD, OpFFMA:
		fmt.Fprintf(&b, "%s R%d, %s, %s, %s", in.Op, in.Dst, in.Src[0], in.Src[1], in.Src[2])
	case OpMOV, OpRCP, OpEX2, OpLG2, OpSQRT, OpI2F, OpF2I:
		fmt.Fprintf(&b, "%s R%d, %s", in.Op, in.Dst, in.Src[0])
	default:
		fmt.Fprintf(&b, "%s R%d, %s, %s", in.Op, in.Dst, in.Src[0], in.Src[1])
	}
	return b.String()
}

func regName(r uint8) string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", r)
}

// Program is an assembled kernel.
type Program struct {
	Name string
	// Instrs is the instruction stream; branch targets are resolved
	// indices into this slice.
	Instrs []Instr
	// NumRegs is the per-thread register demand (highest register index
	// used, plus one).
	NumRegs int
	// SharedBytes is the static shared-memory footprint per thread block
	// (from the .shared directive).
	SharedBytes int
	// NumParams is the number of constant-bank parameter words read.
	NumParams int
}

// KernelName implements gpu.Kernel.
func (p *Program) KernelName() string { return p.Name }

// VectorRegsPerThread implements gpu.Kernel.
func (p *Program) VectorRegsPerThread() int { return p.NumRegs }

// LocalBytesPerGroup implements gpu.Kernel.
func (p *Program) LocalBytesPerGroup() int { return p.SharedBytes }

// Disassemble renders the whole program, one instruction per line.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n.shared %d\n", p.Name, p.SharedBytes)
	for i := range p.Instrs {
		fmt.Fprintf(&b, "/*%04d*/ %s\n", i, p.Instrs[i].String())
	}
	return b.String()
}
