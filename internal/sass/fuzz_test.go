package sass_test

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/sass"
	"repro/internal/workloads"
)

// FuzzAssemble throws arbitrary sources at the SASS-dialect assembler.
// The invariants: Assemble never panics, and any program it accepts
// survives a disassemble/reassemble round-trip with stable output —
// Disassemble must emit text the assembler itself parses back to the
// same program. The seed corpus is the real kernels of the paper's
// 10-benchmark suite, so every grammar production the simulators depend
// on is in the initial population. (The test lives in package sass_test
// because workloads imports sass.)
func FuzzAssemble(f *testing.F) {
	for _, src := range workloads.KernelSources(gpu.NVIDIA) {
		f.Add(src)
	}
	f.Add(".kernel k\nEXIT\n")
	f.Add(".kernel k\n.shared 64\nloop:\n@P0 BRA loop\n@!P1 EXIT\nEXIT\n")
	f.Add(".kernel k\n    FADD R0, R1, 1.5e-3f\n    LDG R2, [R3+8]\n    STG [R3-4], R2\n    EXIT\n")
	f.Add(".kernel k\n    IMAD R3, R1, R2, c[0]\n    ISETP.GE P0, R3, 0x10\n    EXIT ; comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := sass.Assemble(src)
		if err != nil {
			return
		}
		text := p.Disassemble()
		p2, err := sass.Assemble(text)
		if err != nil {
			t.Fatalf("accepted program's disassembly does not reassemble: %v\ninput:\n%s\ndisassembly:\n%s", err, src, text)
		}
		if got := p2.Disassemble(); got != text {
			t.Fatalf("round-trip unstable:\nfirst:\n%s\nsecond:\n%s", text, got)
		}
	})
}
