package sass

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a SASS-like kernel source into a Program. The accepted
// grammar, line oriented:
//
//	.kernel <name>          kernel entry name (required, first)
//	.shared <bytes>         static shared memory per block (optional)
//	<label>:                branch target
//	[@[!]Pn] MNEMONIC operands...
//
// Comments start with ';' or '//' and run to end of line. Operands are
// separated by commas. Register operands are R0..R127 or RZ; predicate
// operands are P0..P5 or PT; immediates are decimal or 0x hex integers,
// or float32 literals with an 'f' suffix (e.g. 1.0f, -2.5e-1f); kernel
// parameters are c[n]; memory operands are [Rn], [Rn+imm] or [Rn-imm].
func Assemble(src string) (*Program, error) {
	p := &Program{SharedBytes: 0}
	labels := make(map[string]int)
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup
	maxReg := -1
	maxParam := -1
	sawKernel := false
	hasExit := false

	noteReg := func(r uint8) {
		if r != RZ && int(r) > maxReg {
			maxReg = int(r)
		}
	}
	noteOperand := func(o Operand) {
		switch o.Kind {
		case OperandReg:
			noteReg(o.Reg)
		case OperandConst:
			if int(o.CIdx) > maxParam {
				maxParam = int(o.CIdx)
			}
		}
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := lineNo + 1

		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".kernel":
				if len(fields) != 2 {
					return nil, asmErr(ln, ".kernel needs exactly one name")
				}
				if sawKernel {
					return nil, asmErr(ln, "duplicate .kernel directive")
				}
				p.Name = fields[1]
				sawKernel = true
			case ".shared":
				if len(fields) != 2 {
					return nil, asmErr(ln, ".shared needs exactly one byte count")
				}
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, asmErr(ln, "invalid .shared size %q", fields[1])
				}
				p.SharedBytes = n
			default:
				return nil, asmErr(ln, "unknown directive %s", fields[0])
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if !isIdent(name) {
				return nil, asmErr(ln, "invalid label %q", name)
			}
			if _, dup := labels[name]; dup {
				return nil, asmErr(ln, "duplicate label %q", name)
			}
			labels[name] = len(p.Instrs)
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if !sawKernel {
			return nil, asmErr(ln, "instruction before .kernel directive")
		}

		in := Instr{Line: ln, Guard: Guard{Pred: PT}, Dst: RZ, PDst: PT, PSrc: PT}

		// Guard prefix.
		if strings.HasPrefix(line, "@") {
			sp := strings.IndexAny(line, " \t")
			if sp < 0 {
				return nil, asmErr(ln, "guard without instruction")
			}
			g := line[1:sp]
			line = strings.TrimSpace(line[sp+1:])
			if strings.HasPrefix(g, "!") {
				in.Guard.Neg = true
				g = g[1:]
			}
			pr, err := parsePred(g)
			if err != nil {
				return nil, asmErr(ln, "bad guard predicate %q", g)
			}
			in.Guard.Pred = pr
		}

		// Mnemonic and operand text.
		mn := line
		ops := ""
		if sp := strings.IndexAny(line, " \t"); sp >= 0 {
			mn = line[:sp]
			ops = strings.TrimSpace(line[sp+1:])
		}
		mn = strings.ToUpper(mn)
		args := splitOperands(ops)

		label, err := parseInstr(&in, mn, args, ln)
		if err != nil {
			return nil, err
		}
		if label != "" {
			fixups = append(fixups, fixup{instr: len(p.Instrs), label: label, line: ln})
		}
		noteReg(in.Dst)
		noteReg(in.MemBase)
		for _, o := range in.Src {
			noteOperand(o)
		}
		if in.Op == OpEXIT {
			hasExit = true
		}
		p.Instrs = append(p.Instrs, in)
	}

	if !sawKernel {
		return nil, fmt.Errorf("sass: missing .kernel directive")
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("sass: %s: empty program", p.Name)
	}
	if !hasExit {
		return nil, fmt.Errorf("sass: %s: program has no EXIT", p.Name)
	}
	for _, f := range fixups {
		if n, ok := branchIndex(f.label); ok {
			if n > len(p.Instrs) {
				return nil, asmErr(f.line, "branch target @%d beyond program end", n)
			}
			p.Instrs[f.instr].Target = n
			continue
		}
		tgt, ok := labels[f.label]
		if !ok {
			return nil, asmErr(f.line, "undefined label %q", f.label)
		}
		p.Instrs[f.instr].Target = tgt
	}
	if maxReg+1 > MaxRegs {
		return nil, fmt.Errorf("sass: %s: uses %d registers, max %d", p.Name, maxReg+1, MaxRegs)
	}
	p.NumRegs = maxReg + 1
	if p.NumRegs == 0 {
		p.NumRegs = 1
	}
	p.NumParams = maxParam + 1
	return p, nil
}

// MustAssemble is Assemble that panics on error; for static kernel tables.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func asmErr(line int, format string, args ...any) error {
	return fmt.Errorf("sass: line %d: %s", line, fmt.Sprintf(format, args...))
}

func stripComment(s string) string {
	// Block comments, e.g. the disassembler's /*0042*/ index prefixes.
	// An unterminated /* comments out the rest of the line.
	for {
		i := strings.Index(s, "/*")
		if i < 0 {
			break
		}
		j := strings.Index(s[i+2:], "*/")
		if j < 0 {
			s = s[:i]
			break
		}
		s = s[:i] + " " + s[i+2+j+2:]
	}
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

// branchIndex parses the disassembler's "@N" absolute branch-target
// form, so disassembled programs reassemble without labels.
func branchIndex(s string) (int, bool) {
	rest, ok := strings.CutPrefix(s, "@")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "R1, [R2+4], 0x10" into top-level comma fields
// (commas inside brackets do not occur in this ISA, but be safe).
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseReg(s string) (uint8, error) {
	s = strings.ToUpper(s)
	if s == "RZ" {
		return RZ, nil
	}
	if len(s) < 2 || s[0] != 'R' {
		return 0, fmt.Errorf("not a register: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= MaxRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parsePred(s string) (uint8, error) {
	s = strings.ToUpper(s)
	if s == "PT" {
		return PT, nil
	}
	if len(s) < 2 || s[0] != 'P' {
		return 0, fmt.Errorf("not a predicate: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumPreds {
		return 0, fmt.Errorf("bad predicate %q", s)
	}
	return uint8(n), nil
}

func parseSrc(s string) (Operand, error) {
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	up := strings.ToUpper(s)
	// Constant bank: c[n]
	if strings.HasPrefix(up, "C[") && strings.HasSuffix(up, "]") {
		n, err := strconv.Atoi(s[2 : len(s)-1])
		if err != nil || n < 0 || n > 0xffff {
			return Operand{}, fmt.Errorf("bad constant operand %q", s)
		}
		return C(n), nil
	}
	// Register.
	if up == "RZ" || (len(up) >= 2 && up[0] == 'R' && up[1] >= '0' && up[1] <= '9') {
		r, err := parseReg(up)
		if err != nil {
			return Operand{}, err
		}
		return R(int(r)), nil
	}
	// Float immediate: trailing 'f'.
	if (strings.HasSuffix(s, "f") || strings.HasSuffix(s, "F")) && !strings.HasPrefix(up, "0X") {
		v, err := strconv.ParseFloat(s[:len(s)-1], 32)
		if err != nil {
			return Operand{}, fmt.Errorf("bad float immediate %q", s)
		}
		return ImmF(float32(v)), nil
	}
	// Integer immediate: decimal or hex, signed allowed.
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return Operand{}, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return Imm(uint32(v)), nil
}

// parseMem parses "[Rn]", "[Rn+imm]" or "[Rn-imm]".
func parseMem(s string) (base uint8, off int32, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("not a memory operand: %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sign := int32(1)
	idx := strings.IndexAny(inner, "+-")
	// A leading '-' would belong to the register, which is invalid anyway.
	regPart, offPart := inner, ""
	if idx > 0 {
		if inner[idx] == '-' {
			sign = -1
		}
		regPart = strings.TrimSpace(inner[:idx])
		offPart = strings.TrimSpace(inner[idx+1:])
	}
	base, err = parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	if offPart != "" {
		v, perr := strconv.ParseInt(offPart, 0, 32)
		if perr != nil {
			return 0, 0, fmt.Errorf("bad memory offset %q", offPart)
		}
		off = sign * int32(v)
	}
	return base, off, nil
}

func parseCmpSuffix(s string) (Cmp, error) {
	for i, n := range cmpNames {
		if s == n {
			return Cmp(i), nil
		}
	}
	return 0, fmt.Errorf("unknown comparison %q", s)
}

func parseSR(s string) (SpecialReg, error) {
	up := strings.ToUpper(s)
	for i, n := range srNames {
		if up == n {
			return SpecialReg(i), nil
		}
	}
	return 0, fmt.Errorf("unknown special register %q", s)
}

// parseInstr fills in from the mnemonic and operand strings; it returns a
// label name when the instruction needs branch-target fixup.
func parseInstr(in *Instr, mn string, args []string, ln int) (string, error) {
	need := func(n int) error {
		if len(args) != n {
			return asmErr(ln, "%s expects %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	dstReg := func(i int) error {
		r, err := parseReg(args[i])
		if err != nil {
			return asmErr(ln, "%s: %v", mn, err)
		}
		in.Dst = r
		return nil
	}
	src := func(i, slot int) error {
		o, err := parseSrc(args[i])
		if err != nil {
			return asmErr(ln, "%s: %v", mn, err)
		}
		in.Src[slot] = o
		return nil
	}

	// Two-source ALU ops share one shape: OP Rd, Ra, src.
	binOps := map[string]Opcode{
		"IADD": OpIADD, "ISUB": OpISUB, "IMUL": OpIMUL,
		"IMIN": OpIMIN, "IMAX": OpIMAX,
		"AND": OpAND, "OR": OpOR, "XOR": OpXOR, "SHL": OpSHL, "SHR": OpSHR,
		"FADD": OpFADD, "FSUB": OpFSUB, "FMUL": OpFMUL,
		"FMIN": OpFMIN, "FMAX": OpFMAX,
	}
	// One-source ops: OP Rd, src.
	unOps := map[string]Opcode{
		"MOV": OpMOV, "MOV32I": OpMOV,
		"MUFU.RCP": OpRCP, "MUFU.EX2": OpEX2, "MUFU.LG2": OpLG2,
		"MUFU.SQRT": OpSQRT,
		"RCP":       OpRCP, "EX2": OpEX2, "LG2": OpLG2, "SQRT": OpSQRT,
		"I2F": OpI2F, "F2I": OpF2I,
	}

	switch {
	case mn == "NOP" || mn == "SYNC" || mn == "EXIT":
		if err := need(0); err != nil {
			return "", err
		}
		switch mn {
		case "NOP":
			in.Op = OpNOP
		case "SYNC":
			in.Op = OpSYNC
		default:
			in.Op = OpEXIT
		}
	case mn == "BAR.SYNC" || mn == "BAR":
		if err := need(0); err != nil {
			return "", err
		}
		in.Op = OpBAR
	case mn == "BRA" || mn == "SSY":
		if err := need(1); err != nil {
			return "", err
		}
		if _, num := branchIndex(args[0]); !isIdent(args[0]) && !num {
			return "", asmErr(ln, "%s: bad label %q", mn, args[0])
		}
		if mn == "BRA" {
			in.Op = OpBRA
		} else {
			in.Op = OpSSY
		}
		return args[0], nil
	case mn == "S2R":
		if err := need(2); err != nil {
			return "", err
		}
		if err := dstReg(0); err != nil {
			return "", err
		}
		sr, err := parseSR(args[1])
		if err != nil {
			return "", asmErr(ln, "S2R: %v", err)
		}
		in.Op = OpS2R
		in.SR = sr
	case mn == "IMAD" || mn == "FFMA":
		if err := need(4); err != nil {
			return "", err
		}
		if err := dstReg(0); err != nil {
			return "", err
		}
		for i := 0; i < 3; i++ {
			if err := src(i+1, i); err != nil {
				return "", err
			}
		}
		if mn == "IMAD" {
			in.Op = OpIMAD
		} else {
			in.Op = OpFFMA
		}
	case mn == "SEL":
		if err := need(4); err != nil {
			return "", err
		}
		if err := dstReg(0); err != nil {
			return "", err
		}
		if err := src(1, 0); err != nil {
			return "", err
		}
		if err := src(2, 1); err != nil {
			return "", err
		}
		pr, err := parsePred(args[3])
		if err != nil {
			return "", asmErr(ln, "SEL: %v", err)
		}
		in.Op = OpSEL
		in.PSrc = pr
	case strings.HasPrefix(mn, "ISETP.") || strings.HasPrefix(mn, "FSETP."):
		if err := need(3); err != nil {
			return "", err
		}
		cc, err := parseCmpSuffix(mn[6:])
		if err != nil {
			return "", asmErr(ln, "%s: %v", mn, err)
		}
		pd, err := parsePred(args[0])
		if err != nil {
			return "", asmErr(ln, "%s: %v", mn, err)
		}
		if pd == PT {
			return "", asmErr(ln, "%s: cannot write PT", mn)
		}
		if err := src(1, 0); err != nil {
			return "", err
		}
		if err := src(2, 1); err != nil {
			return "", err
		}
		if strings.HasPrefix(mn, "I") {
			in.Op = OpISETP
		} else {
			in.Op = OpFSETP
		}
		in.Cmp = cc
		in.PDst = pd
	case mn == "LDG" || mn == "LDS":
		if err := need(2); err != nil {
			return "", err
		}
		if err := dstReg(0); err != nil {
			return "", err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return "", asmErr(ln, "%s: %v", mn, err)
		}
		if mn == "LDG" {
			in.Op = OpLDG
		} else {
			in.Op = OpLDS
		}
		in.MemBase, in.MemOff = base, off
	case mn == "STG" || mn == "STS":
		if err := need(2); err != nil {
			return "", err
		}
		base, off, err := parseMem(args[0])
		if err != nil {
			return "", asmErr(ln, "%s: %v", mn, err)
		}
		if err := src(1, 0); err != nil {
			return "", err
		}
		if mn == "STG" {
			in.Op = OpSTG
		} else {
			in.Op = OpSTS
		}
		in.MemBase, in.MemOff = base, off
	default:
		if op, ok := binOps[mn]; ok {
			if err := need(3); err != nil {
				return "", err
			}
			if err := dstReg(0); err != nil {
				return "", err
			}
			if err := src(1, 0); err != nil {
				return "", err
			}
			if err := src(2, 1); err != nil {
				return "", err
			}
			in.Op = op
			return "", nil
		}
		if op, ok := unOps[mn]; ok {
			if err := need(2); err != nil {
				return "", err
			}
			if err := dstReg(0); err != nil {
				return "", err
			}
			if err := src(1, 0); err != nil {
				return "", err
			}
			in.Op = op
			return "", nil
		}
		return "", asmErr(ln, "unknown mnemonic %q", mn)
	}
	return "", nil
}
