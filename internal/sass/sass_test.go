package sass

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const testKernel = `
.kernel k
.shared 128
    S2R R0, SR_TID.X
    MOV R1, c[0]
    ISETP.GE P0, R0, c[1]
@P0 EXIT
    SSY join
@!P0 BRA other
    MOV R2, 1
    SYNC
other:
    MOV R2, 2
    SYNC
join:
    SHL R3, R0, 2
    IADD R4, R3, R1
    LDG R5, [R4+16]
    FADD R6, R5, 1.5f
    FFMA R7, R5, R6, R6
    STS [R3], R7
    BAR.SYNC
    LDS R8, [R3-0]
    STG [R4], R8
    EXIT
`

func TestAssembleBasics(t *testing.T) {
	p, err := Assemble(testKernel)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "k" {
		t.Fatalf("name %q", p.Name)
	}
	if p.SharedBytes != 128 {
		t.Fatalf("shared %d", p.SharedBytes)
	}
	if p.NumRegs != 9 {
		t.Fatalf("NumRegs = %d, want 9", p.NumRegs)
	}
	if p.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", p.NumParams)
	}
	// Branch targets resolved.
	for _, in := range p.Instrs {
		if in.Op == OpBRA || in.Op == OpSSY {
			if in.Target <= 0 || in.Target >= len(p.Instrs) {
				t.Fatalf("unresolved target %d in %s", in.Target, in.String())
			}
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"missing kernel":  "MOV R0, 1\nEXIT\n",
		"no exit":         ".kernel k\nMOV R0, 1\n",
		"empty":           ".kernel k\n",
		"bad mnemonic":    ".kernel k\nFROB R0, 1\nEXIT\n",
		"bad register":    ".kernel k\nMOV R999, 1\nEXIT\n",
		"undefined label": ".kernel k\nBRA nowhere\nEXIT\n",
		"duplicate label": ".kernel k\nx:\nx:\nEXIT\n",
		"write PT":        ".kernel k\nISETP.EQ PT, R0, 1\nEXIT\n",
		"bad operand cnt": ".kernel k\nIADD R0, R1\nEXIT\n",
		"bad immediate":   ".kernel k\nMOV R0, zzz\nEXIT\n",
		"bad directive":   ".kernel k\n.bogus 3\nEXIT\n",
		"dup kernel":      ".kernel k\n.kernel j\nEXIT\n",
		"bad guard":       ".kernel k\n@Q0 MOV R0, 1\nEXIT\n",
		"bad mem operand": ".kernel k\nLDG R0, R1\nEXIT\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected assembly error", name)
		}
	}
}

func TestFloatImmediateEncoding(t *testing.T) {
	p, err := Assemble(".kernel k\nMOV R0, 1.5f\nMOV R1, -0.25f\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float32frombits(p.Instrs[0].Src[0].Imm); got != 1.5 {
		t.Fatalf("1.5f parsed as %v", got)
	}
	if got := math.Float32frombits(p.Instrs[1].Src[0].Imm); got != -0.25 {
		t.Fatalf("-0.25f parsed as %v", got)
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	p, err := Assemble(".kernel k\nMOV R0, 0x7F7FFFFF\nMOV R1, -1\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Src[0].Imm != 0x7F7FFFFF {
		t.Fatalf("hex literal: %#x", p.Instrs[0].Src[0].Imm)
	}
	if p.Instrs[1].Src[0].Imm != 0xFFFFFFFF {
		t.Fatalf("negative literal: %#x", p.Instrs[1].Src[0].Imm)
	}
}

func TestMemOperandOffsets(t *testing.T) {
	p, err := Assemble(".kernel k\nLDG R0, [R1+256]\nLDG R2, [R3-8]\nLDG R4, [RZ+64]\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].MemOff != 256 || p.Instrs[1].MemOff != -8 {
		t.Fatalf("offsets: %d %d", p.Instrs[0].MemOff, p.Instrs[1].MemOff)
	}
	if p.Instrs[2].MemBase != RZ {
		t.Fatalf("RZ base not recognized")
	}
}

func TestRZNotCountedInRegs(t *testing.T) {
	p, err := Assemble(".kernel k\nMOV R0, RZ\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRegs != 1 {
		t.Fatalf("NumRegs = %d, want 1 (RZ must not allocate)", p.NumRegs)
	}
}

// TestDisassembleReassemble: disassembly must reassemble to the same
// instruction stream for programs without branches (branch targets print
// as indices, not labels).
func TestDisassembleStable(t *testing.T) {
	p, err := Assemble(testKernel)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Disassemble()
	for i, in := range p.Instrs {
		if !strings.Contains(text, in.String()) {
			t.Fatalf("disassembly missing instruction %d: %s", i, in.String())
		}
	}
}

func TestCmpEval(t *testing.T) {
	if !CmpLT.EvalI(-1, 2) || CmpLT.EvalI(2, -1) {
		t.Fatal("signed LT broken")
	}
	if !CmpGE.EvalI(5, 5) {
		t.Fatal("GE broken")
	}
	nan := float32(math.NaN())
	for _, c := range []Cmp{CmpLT, CmpLE, CmpGT, CmpGE, CmpEQ} {
		if c.EvalF(nan, 1) {
			t.Fatalf("%v with NaN must be false", c)
		}
	}
	if !CmpNE.EvalF(nan, 1) {
		t.Fatal("NE with NaN must be true")
	}
}

// Property: EvalI is consistent with its negation pairs.
func TestCmpEvalProperty(t *testing.T) {
	if err := quick.Check(func(a, b int32) bool {
		return CmpLT.EvalI(a, b) == !CmpGE.EvalI(a, b) &&
			CmpLE.EvalI(a, b) == !CmpGT.EvalI(a, b) &&
			CmpEQ.EvalI(a, b) == !CmpNE.EvalI(a, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGuardString(t *testing.T) {
	g := Guard{Pred: PT}
	if g.String() != "" || !g.Unguarded() {
		t.Fatal("PT guard must render empty")
	}
	g = Guard{Pred: 2, Neg: true}
	if g.String() != "@!P2 " {
		t.Fatalf("guard renders %q", g.String())
	}
}

func TestOpClassCoverage(t *testing.T) {
	want := map[Opcode]Class{
		OpRCP: ClassSFU, OpEX2: ClassSFU,
		OpLDS: ClassLocalMem, OpSTS: ClassLocalMem,
		OpLDG: ClassGlobalMem, OpSTG: ClassGlobalMem,
		OpBRA: ClassControl, OpBAR: ClassBarrier,
		OpIADD: ClassALU, OpFFMA: ClassALU,
	}
	for op, cl := range want {
		if OpClass(op) != cl {
			t.Errorf("OpClass(%v) = %v, want %v", op, OpClass(op), cl)
		}
	}
}

// Property: assembling a random well-formed ALU program computes NumRegs
// as max register index + 1.
func TestNumRegsProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var b strings.Builder
		b.WriteString(".kernel q\n")
		maxIdx := 0
		for _, v := range raw {
			r := int(v) % 64
			if r > maxIdx {
				maxIdx = r
			}
			b.WriteString("IADD R")
			b.WriteString(itoa(r))
			b.WriteString(", RZ, 1\n")
		}
		b.WriteString("EXIT\n")
		p, err := Assemble(b.String())
		if err != nil {
			return false
		}
		return p.NumRegs == maxIdx+1
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble(".kernel k\nstart: MOV R0, 1\nBRA start\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Target != 0 {
		t.Fatalf("label-on-line target = %d", p.Instrs[1].Target)
	}
}

func TestCommentsStripped(t *testing.T) {
	p, err := Assemble(".kernel k\nMOV R0, 1 ; trailing\n// whole line\nEXIT\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 2 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("garbage")
}
