// Package gpu defines the vendor-neutral substrate shared by the NVIDIA
// (nvsim) and AMD (amdsim) microarchitectural simulators and by the
// reliability analyses built on top of them: device global memory, launch
// geometry, the kernel ABI, hardware-structure identifiers, the fault
// model, access-trace hooks for ACE analysis, and run statistics.
//
// The fault-injection and ACE engines only ever talk to a Device; the two
// simulators plug in underneath, exactly as GUFI (on GPGPU-Sim) and SIFI
// (on Multi2Sim) share one methodology over two simulators in the paper.
package gpu

import (
	"errors"
	"fmt"
)

// Vendor distinguishes the two simulated GPU families.
type Vendor int

// Supported vendors.
const (
	NVIDIA Vendor = iota
	AMD
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// Structure identifies a fault-injection / ACE-analysis target structure.
type Structure int

// The two structures the paper evaluates.
const (
	// RegisterFile is the per-SM (NVIDIA) or per-CU vector (AMD VGPR)
	// register file, addressed as 32-bit entries.
	RegisterFile Structure = iota
	// LocalMemory is the NVIDIA shared memory / AMD local data share,
	// addressed as bytes.
	LocalMemory
)

// MarshalText renders the structure name in JSON/text encodings.
func (s Structure) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a structure name produced by MarshalText.
func (s *Structure) UnmarshalText(b []byte) error {
	switch string(b) {
	case "register-file":
		*s = RegisterFile
	case "local-memory":
		*s = LocalMemory
	default:
		return fmt.Errorf("gpu: unknown structure %q", b)
	}
	return nil
}

// String returns the structure name used in reports.
func (s Structure) String() string {
	switch s {
	case RegisterFile:
		return "register-file"
	case LocalMemory:
		return "local-memory"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Outcome classifies the result of one fault-injection experiment.
type Outcome int

// Fault-injection outcome taxonomy, matching the classification used by
// GUFI/SIFI: a flip is Masked when the program output is bit-identical to
// the golden run; SDC when the program terminates normally with corrupted
// output; DUE when the simulator detects a fatal condition (invalid
// memory access, invalid PC, malformed execution); Timeout when the
// execution exceeds the watchdog cycle budget (hang / livelock).
const (
	OutcomeMasked Outcome = iota
	OutcomeSDC
	OutcomeDUE
	OutcomeTimeout
	outcomeCount
)

// NumOutcomes is the number of distinct outcome classes.
const NumOutcomes = int(outcomeCount)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeMasked:
		return "masked"
	case OutcomeSDC:
		return "sdc"
	case OutcomeDUE:
		return "due"
	case OutcomeTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Failure reports whether the outcome counts against the AVF (any visible
// manifestation of the flip: SDC, DUE or hang).
func (o Outcome) Failure() bool { return o != OutcomeMasked }

// MarshalText renders the outcome name in JSON/text encodings.
func (o Outcome) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText parses an outcome name produced by MarshalText.
func (o *Outcome) UnmarshalText(b []byte) error {
	switch string(b) {
	case "masked":
		*o = OutcomeMasked
	case "sdc":
		*o = OutcomeSDC
	case "due":
		*o = OutcomeDUE
	case "timeout":
		*o = OutcomeTimeout
	default:
		return fmt.Errorf("gpu: unknown outcome %q", b)
	}
	return nil
}

// Dim3 is a 3-dimensional launch extent (grid or workgroup geometry).
type Dim3 struct {
	X, Y, Z int
}

// D1 builds a 1-dimensional extent.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 builds a 2-dimensional extent.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Count returns the total number of elements in the extent.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	if z <= 0 {
		z = 1
	}
	return x * y * z
}

// String renders the extent as (x,y,z).
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// Kernel is the device-specific compiled kernel handle. nvsim accepts
// *sass.Program, amdsim accepts *siasm.Program; the Launch implementation
// type-asserts. Resource metadata is exposed so occupancy can be computed
// uniformly.
type Kernel interface {
	// KernelName returns the kernel's entry name.
	KernelName() string
	// VectorRegsPerThread returns the number of 32-bit vector registers
	// each work-item needs.
	VectorRegsPerThread() int
	// LocalBytesPerGroup returns the local/shared memory footprint of one
	// workgroup in bytes.
	LocalBytesPerGroup() int
}

// LaunchSpec describes one kernel launch enqueued by a host program.
type LaunchSpec struct {
	Kernel Kernel
	// Grid is the number of workgroups (thread blocks) per dimension.
	Grid Dim3
	// Group is the workgroup (thread block) size per dimension.
	Group Dim3
	// Args are the kernel parameters as 32-bit words: scalars and device
	// buffer addresses. NVIDIA kernels read them from the constant bank
	// (c[i]); AMD kernels load them from the kernarg segment (karg[i]).
	Args []uint32
}

// Fault describes one transient single-bit flip to inject.
type Fault struct {
	Structure Structure
	// Unit is the SM (NVIDIA) or CU (AMD) index.
	Unit int
	// Entry addresses the storage within the unit: a 32-bit register-file
	// entry index for RegisterFile, a byte offset for LocalMemory.
	Entry int
	// Bit is the bit position within the entry (0-31 for the register
	// file, 0-7 for local memory bytes).
	Bit uint
	// Width is the number of adjacent bits to flip starting at Bit
	// (values < 2 mean the paper's single-bit model; the burst is
	// truncated at the entry's top bit).
	Width uint
	// Cycle is the global device cycle at which the flip occurs.
	Cycle int64
}

// Mask returns the flip mask of the fault within an entry of the given
// bit width (32 for register entries, 8 for local-memory bytes).
func (f Fault) Mask(entryBits int) uint32 {
	w := f.Width
	if w < 1 {
		w = 1
	}
	b := f.Bit % uint(entryBits)
	var m uint32
	for i := uint(0); i < w && b+i < uint(entryBits); i++ {
		m |= 1 << (b + i)
	}
	return m
}

// String renders the fault site.
func (f Fault) String() string {
	w := f.Width
	if w < 1 {
		w = 1
	}
	return fmt.Sprintf("%s unit=%d entry=%d bit=%d width=%d cycle=%d",
		f.Structure, f.Unit, f.Entry, f.Bit, w, f.Cycle)
}

// Tracer receives architectural access events for ACE lifetime analysis.
// All callbacks use global device cycles. Implementations must be cheap:
// the simulator invokes them on every register and local-memory access of
// a traced run. A nil tracer disables tracing.
type Tracer interface {
	// RegAccess reports a 32-bit register-file access.
	RegAccess(unit, entry int, cycle int64, write bool)
	// LocalAccess reports a local/shared memory access of size bytes.
	LocalAccess(unit, offset, size int, cycle int64, write bool)
	// RegAlloc and RegFree bracket the residency of a workgroup's
	// register allocation [base, base+count).
	RegAlloc(unit, base, count int, cycle int64)
	RegFree(unit, base, count int, cycle int64)
	// LocalAlloc and LocalFree bracket a workgroup's local-memory
	// allocation [base, base+size).
	LocalAlloc(unit, base, size int, cycle int64)
	LocalFree(unit, base, size int, cycle int64)
}

// OccStats accumulates time-weighted occupancy of one structure:
// AllocUnitCycles counts entry-cycles (register entries or bytes) during
// which the storage was allocated to a resident workgroup; capacity and
// elapsed cycles convert it to the occupancy fraction of Fig. 1/2.
type OccStats struct {
	AllocUnitCycles float64
}

// RunStats aggregates execution statistics across all launches of a host
// program on one device.
type RunStats struct {
	// Cycles is the total device cycle count (the union of all launches;
	// launches execute back to back).
	Cycles int64
	// Instructions counts dynamic warp/wavefront instructions issued.
	Instructions int64
	// LaneInstructions counts per-work-item executed instruction slots
	// (active lanes only).
	LaneInstructions int64
	// Launches is the number of kernel launches executed.
	Launches int
	// RegOcc and LocalOcc accumulate structure occupancy.
	RegOcc   OccStats
	LocalOcc OccStats
}

// Occupancy returns the time-weighted fraction of the structure's capacity
// that was allocated, given the structure capacity in entries (register
// entries or bytes) summed over all units.
func (s RunStats) Occupancy(st Structure, totalEntries int64) float64 {
	if s.Cycles == 0 || totalEntries == 0 {
		return 0
	}
	var alloc float64
	switch st {
	case RegisterFile:
		alloc = s.RegOcc.AllocUnitCycles
	case LocalMemory:
		alloc = s.LocalOcc.AllocUnitCycles
	}
	return alloc / (float64(totalEntries) * float64(s.Cycles))
}

// Snapshot is an opaque, immutable image of a device's complete
// execution state, captured at a scheduling boundary by Device.Snapshot
// or by a checkpoint hook during Launch. Snapshots never alias mutable
// device storage (memory pages are copy-on-write: shared between images
// but immutable once captured), so one snapshot can be restored
// concurrently into any number of device instances of the same chip
// configuration (the fault-injection engine shares one golden checkpoint
// ladder across its whole worker pool of per-worker device replicas).
type Snapshot interface {
	// Cycle returns the global device cycle the snapshot was captured at.
	Cycle() int64
	// SizeBytes estimates the snapshot's memory footprint, used to size
	// checkpoint ladders against a memory budget.
	SizeBytes() int64
}

// RestoreCoster is optionally implemented by devices that account the
// page-level cost of COW snapshot restores. Counters are cumulative;
// the fault-injection engine reads deltas around each restore.
type RestoreCoster interface {
	RestorePageStats() (copiedPages, sharedPages int64)
}

// SnapshotCodec is optionally implemented by devices whose snapshots
// can cross a process boundary through the binary wire format
// (internal/wire). A snapshot splits into its device-memory image —
// whose 4 KiB pages the wire format content-addresses and mmap-shares —
// and an opaque vendor meta blob covering every remaining piece of
// state (SM/CU structures, scheduler pointers, statistics, launch
// progress). The contract is exact: UnmarshalSnapshot(MarshalSnapshot(s))
// must restore bit-identically to s on any device of the same chip
// configuration.
type SnapshotCodec interface {
	// MarshalSnapshot encodes s, which must have been captured by a
	// device of this implementation and chip geometry.
	MarshalSnapshot(s Snapshot) (mem *MemImage, meta []byte, err error)
	// UnmarshalSnapshot rebuilds a snapshot from a memory image (whose
	// pages may reference read-only mapped storage) and the meta blob.
	UnmarshalSnapshot(mem *MemImage, meta []byte) (Snapshot, error)
}

// Device is the simulator-side contract the reliability engines program
// against.
type Device interface {
	// Name returns the marketing name of the simulated chip.
	Name() string
	// Vendor returns the chip vendor.
	Vendor() Vendor
	// Mem returns the device global memory.
	Mem() *Memory
	// Launch synchronously executes one kernel launch.
	Launch(spec LaunchSpec) error
	// Stats returns execution statistics accumulated since the last Reset.
	Stats() RunStats
	// Reset restores the device to power-on state (zeroed structures,
	// zeroed statistics) keeping the installed fault and tracer cleared.
	Reset()
	// InjectFault arms a single-bit flip for the next execution; a nil
	// fault disarms. The flip is applied to the physical storage when the
	// device cycle counter reaches Fault.Cycle, whether or not the target
	// is allocated at that time.
	InjectFault(f *Fault)
	// SetTracer installs an access tracer (nil disables tracing).
	SetTracer(t Tracer)
	// SetWatchdog bounds execution: any launch that exceeds maxCycles
	// device cycles aborts with ErrWatchdog. Zero restores the default.
	SetWatchdog(maxCycles int64)
	// Snapshot captures the complete execution state between launches.
	// Mid-launch snapshots are only reachable through the checkpoint
	// hook, which fires at a deterministic scheduling boundary.
	Snapshot() Snapshot
	// Restore replaces the device's execution state (memory, structure
	// contents, scheduler/queue state, cycle counter, accumulated stats
	// and launch progress) with the snapshot's, arming fast-forward
	// resume: the host program is then replayed from its start, device
	// memory suppresses the host's already-applied allocations and
	// uploads, completed launches return immediately, and the launch the
	// snapshot interrupted resumes from the captured state. The armed
	// fault, tracer and watchdog are left untouched. Restoring a
	// snapshot from a different implementation or chip geometry fails.
	Restore(s Snapshot) error
	// SetCheckpointHook arms periodic state capture during Launch: when
	// the device cycle first reaches next, the device captures a
	// Snapshot at the launch loop's scheduling boundary and hands it to
	// fn; fn returns the next capture cycle (a value not beyond the
	// current cycle stops further captures). A nil fn disarms. Reset
	// clears the hook.
	SetCheckpointHook(next int64, fn func(s Snapshot) int64)
	// Units returns the number of SMs/CUs.
	Units() int
	// StructSize returns the per-unit capacity of a structure in entries:
	// 32-bit entries for RegisterFile, bytes for LocalMemory.
	StructSize(st Structure) int
	// StructBits returns the total chip-wide structure size in bits.
	StructBits(st Structure) int64
	// ClockGHz returns the shader/engine clock used for time conversion.
	ClockGHz() float64
}

// EntryBits returns the number of bits in one entry of the structure.
func EntryBits(st Structure) int {
	if st == RegisterFile {
		return 32
	}
	return 8
}

// ErrWatchdog is returned by Device.Launch when the watchdog cycle budget
// is exhausted; the fault-injection engine classifies it as a hang.
var ErrWatchdog = errors.New("gpu: watchdog cycle budget exhausted")

// Region is an address range in device global memory.
type Region struct {
	Addr uint32
	Size uint32
}

// HostProgram is a complete, deterministic host-side driver for one
// benchmark build: it owns pre-generated inputs and a CPU golden model.
type HostProgram struct {
	// Name is the benchmark name, e.g. "matrixMul".
	Name string
	// Run allocates device buffers, uploads inputs and executes every
	// kernel launch of the benchmark on the device.
	Run func(d Device) error
	// Outputs lists the device regions holding program outputs after Run;
	// the fault-injection engine diffs them bitwise against the golden
	// run's regions.
	Outputs func() []Region
	// Verify checks device outputs against the CPU golden model with the
	// benchmark's tolerance. It validates simulator correctness in tests;
	// fault classification uses the bitwise Outputs diff instead.
	Verify func(d Device) error
}
