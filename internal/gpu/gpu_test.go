package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMemoryAllocAlignmentAndNull(t *testing.T) {
	m := NewMemory(1 << 16)
	a, err := m.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("allocator returned the null address")
	}
	if a%256 != 0 {
		t.Fatalf("allocation %#x not 256-byte aligned", a)
	}
	b, err := m.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Fatalf("allocations overlap: %#x then %#x", a, b)
	}
}

func TestMemoryExhaustion(t *testing.T) {
	m := NewMemory(1 << 12)
	if _, err := m.Alloc(1 << 13); err == nil {
		t.Fatal("oversized allocation accepted")
	}
	if _, err := m.Alloc(-1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestMemoryBoundsChecks(t *testing.T) {
	m := NewMemory(64)
	if _, err := m.Load32(64); err == nil {
		t.Fatal("out-of-bounds load accepted")
	}
	if err := m.Store32(61, 1); err == nil {
		t.Fatal("straddling store accepted")
	}
	if _, err := m.ReadWords(0, 17); err == nil {
		t.Fatal("oversized read accepted")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory(1 << 12)
	addr, err := m.AllocFloats([]float32{1.5, -2.25, float32(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFloats(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.5 || got[1] != -2.25 || !math.IsInf(float64(got[2]), 1) {
		t.Fatalf("round trip %v", got)
	}
}

func TestMemoryResetZeroesAndRewinds(t *testing.T) {
	m := NewMemory(1 << 12)
	a, _ := m.AllocWords([]uint32{0xdeadbeef})
	m.Reset()
	b, err := m.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("allocator did not rewind: %#x vs %#x", a, b)
	}
	v, err := m.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("stale data %#x after reset", v)
	}
}

func TestMemoryWordsProperty(t *testing.T) {
	m := NewMemory(1 << 16)
	if err := quick.Check(func(words []uint32) bool {
		if len(words) == 0 || len(words) > 1000 {
			return true
		}
		m.Reset()
		addr, err := m.AllocWords(words)
		if err != nil {
			return false
		}
		got, err := m.ReadWords(addr, len(words))
		if err != nil {
			return false
		}
		for i := range words {
			if got[i] != words[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDim3(t *testing.T) {
	if D1(5).Count() != 5 || D2(3, 4).Count() != 12 {
		t.Fatal("counts wrong")
	}
	if (Dim3{X: 0, Y: 0, Z: 0}).Count() != 1 {
		t.Fatal("zero dims must clamp to 1")
	}
	if D2(2, 3).String() != "(2,3,1)" {
		t.Fatalf("string %s", D2(2, 3))
	}
}

func TestOutcomeTaxonomy(t *testing.T) {
	if OutcomeMasked.Failure() {
		t.Fatal("masked is not a failure")
	}
	for _, o := range []Outcome{OutcomeSDC, OutcomeDUE, OutcomeTimeout} {
		if !o.Failure() {
			t.Fatalf("%v must be a failure", o)
		}
	}
	if NumOutcomes != 4 {
		t.Fatalf("NumOutcomes = %d", NumOutcomes)
	}
}

func TestEntryBits(t *testing.T) {
	if EntryBits(RegisterFile) != 32 || EntryBits(LocalMemory) != 8 {
		t.Fatal("entry bit widths wrong")
	}
}

func TestOccupancyAccounting(t *testing.T) {
	st := RunStats{Cycles: 100}
	st.RegOcc.AllocUnitCycles = 50 * 100 // 50 entries allocated the whole time
	if got := st.Occupancy(RegisterFile, 200); got != 0.25 {
		t.Fatalf("occupancy %v, want 0.25", got)
	}
	if got := st.Occupancy(LocalMemory, 200); got != 0 {
		t.Fatalf("untouched structure occupancy %v", got)
	}
	empty := RunStats{}
	if empty.Occupancy(RegisterFile, 100) != 0 {
		t.Fatal("zero-cycle stats must report zero occupancy")
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Structure: LocalMemory, Unit: 3, Entry: 17, Bit: 5, Cycle: 99}
	if f.String() != "local-memory unit=3 entry=17 bit=5 width=1 cycle=99" {
		t.Fatalf("got %q", f.String())
	}
}

func TestFaultMask(t *testing.T) {
	cases := []struct {
		bit, width uint
		entryBits  int
		want       uint32
	}{
		{5, 0, 32, 1 << 5},      // width 0 means single bit
		{5, 1, 32, 1 << 5},      // explicit single bit
		{5, 2, 32, 3 << 5},      // adjacent double bit
		{30, 4, 32, 0xC0000000}, // truncated at the top bit
		{6, 3, 8, 0xC0},         // byte entry, truncated
		{9, 1, 8, 1 << 1},       // bit wraps into the entry width
	}
	for _, c := range cases {
		f := Fault{Bit: c.bit, Width: c.width}
		if got := f.Mask(c.entryBits); got != c.want {
			t.Errorf("Mask(bit=%d,width=%d,entry=%d) = %#x, want %#x",
				c.bit, c.width, c.entryBits, got, c.want)
		}
	}
}

func TestStructureTextRoundTrip(t *testing.T) {
	for _, st := range []Structure{RegisterFile, LocalMemory} {
		b, err := st.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Structure
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != st {
			t.Fatalf("round trip %v -> %v", st, back)
		}
	}
	var s Structure
	if err := s.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("bogus structure name accepted")
	}
}
