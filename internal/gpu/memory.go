package gpu

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory models device global memory as a flat little-endian byte array
// with a bump allocator. All accesses are bounds-checked; a failed check
// aborts the launch and is classified as a DUE by the fault-injection
// engine, mirroring how GPGPU-Sim/Multi2Sim abort on wild accesses.
//
// Snapshots are copy-on-write at page granularity: src tracks, per page,
// the immutable image page the live data is currently byte-identical to
// (nil = the page has been written since it was last captured or
// restored). Image shares clean pages with the capturing image instead
// of copying them, and SetImage skips pages whose identity already
// matches the image being restored — so a restore to a nearby ladder
// rung touches only the pages the run actually dirtied.
type Memory struct {
	data []byte
	brk  uint32 // bump-allocation watermark
	hwm  uint32 // high-water mark since last Reset (for cheap zeroing)

	// src[p] is the immutable page data[p<<pageShift:] is identical to,
	// or nil when the page is dirty. Invariant: src[p] != nil implies the
	// live page and src[p] hold the same bytes (the live tail past
	// len(data) in the final page is treated as zero).
	src [][]byte

	// arena bump-allocates image pages in chunks to keep capture from
	// hitting the allocator once per page.
	arena []byte

	// Cumulative SetImage page accounting (see RestorePageStats).
	pagesCopied int64
	pagesShared int64

	// Replay mode (between Snapshot restore and fast-forward resume):
	// the host program re-executes allocations and uploads whose effects
	// the restored image already contains, so Alloc hands out addresses
	// from a shadow watermark without touching state and stores become
	// bounds-checked no-ops. Loads still read the restored image.
	replay bool
	rbrk   uint32
}

// memAlign is the allocation alignment in bytes.
const memAlign = 256

const (
	pageShift = 12
	pageSize  = 1 << pageShift // 4 KiB COW granularity
	arenaPgs  = 64             // pages per arena chunk (256 KiB)
)

// PageSize is the COW page granularity in bytes — also the unit of
// content-addressed page storage in the binary wire format
// (internal/wire), which must agree with the snapshot machinery here.
const PageSize = pageSize

// zeroPage is the canonical identity of an all-zero page. Never written.
var zeroPage = make([]byte, pageSize)

// ZeroPage returns the canonical all-zero page. Decoders substitute it
// for all-zero pages so restores keep their identity-match fast path
// (a freshly Reset memory holds zeroPage identities). Callers must
// never write through it.
func ZeroPage() []byte { return zeroPage }

// NewMemory creates a device memory of the given size in bytes.
func NewMemory(size int) *Memory {
	m := &Memory{data: make([]byte, size)}
	m.src = make([][]byte, pagesFor(uint32(size)))
	for p := range m.src {
		m.src[p] = zeroPage
	}
	return m
}

// pagesFor returns the number of pages covering the first n bytes.
func pagesFor(n uint32) int { return int((uint64(n) + pageSize - 1) >> pageShift) }

// Size returns the memory capacity in bytes.
func (m *Memory) Size() int { return len(m.data) }

// dirty invalidates the page identities covering [addr, addr+size).
// Callers bounds-check first.
func (m *Memory) dirty(addr uint32, size int) {
	first := int(addr >> pageShift)
	last := int((uint64(addr) + uint64(size) - 1) >> pageShift)
	for p := first; p <= last; p++ {
		m.src[p] = nil
	}
}

// samePage reports whether a and b are the same underlying page.
func samePage(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// newArenaPage returns a fresh zeroed page from the bump arena.
func (m *Memory) newArenaPage() []byte {
	if len(m.arena) < pageSize {
		m.arena = make([]byte, arenaPgs*pageSize)
	}
	pg := m.arena[:pageSize:pageSize]
	m.arena = m.arena[pageSize:]
	return pg
}

// pageBounds returns the live-data range [lo, hi) of page p.
func (m *Memory) pageBounds(p int) (lo, hi int) {
	lo = p << pageShift
	hi = lo + pageSize
	if hi > len(m.data) {
		hi = len(m.data)
	}
	return lo, hi
}

// Alloc reserves size bytes and returns the device address. Address 0 is
// never returned (the first allocation starts at memAlign) so that 0 can
// serve as a null pointer.
func (m *Memory) Alloc(size int) (uint32, error) {
	if size < 0 {
		return 0, fmt.Errorf("gpu: negative allocation size %d", size)
	}
	if m.replay {
		// Shadow allocation: the sequence of sizes is deterministic, so
		// replaying it from zero yields the addresses of the original
		// run without disturbing the restored allocator state.
		if m.rbrk == 0 {
			m.rbrk = memAlign
		}
		addr := m.rbrk
		sz := (uint32(size) + memAlign - 1) &^ (memAlign - 1)
		if uint64(addr)+uint64(sz) > uint64(len(m.data)) {
			return 0, fmt.Errorf("gpu: out of device memory (want %d bytes at %#x, capacity %d)", size, addr, len(m.data))
		}
		m.rbrk = addr + sz
		return addr, nil
	}
	if m.brk == 0 {
		m.brk = memAlign
	}
	addr := m.brk
	sz := (uint32(size) + memAlign - 1) &^ (memAlign - 1)
	if uint64(addr)+uint64(sz) > uint64(len(m.data)) {
		return 0, fmt.Errorf("gpu: out of device memory (want %d bytes at %#x, capacity %d)", size, addr, len(m.data))
	}
	m.brk = addr + sz
	if m.brk > m.hwm {
		m.hwm = m.brk
	}
	return addr, nil
}

// MemImage is a compact, immutable copy of a Memory's state: the pages
// covering the high-water-mark prefix plus the allocator watermarks.
// Pages are shared structurally with the Memory they were captured from
// and with neighbouring images (copy-on-write), so consecutive ladder
// rungs pay only for the pages that changed between them. Everything
// beyond the prefix is zero by construction (snapshots are only taken of
// runs that started from power-on state).
type MemImage struct {
	pages [][]byte
	brk   uint32
	hwm   uint32
	owned int // pages copied fresh at capture (not shared with an older image)
}

// SizeBytes returns the image's unique storage footprint: pages copied
// at capture count, pages shared with an earlier image or the canonical
// zero page are free.
func (img *MemImage) SizeBytes() int64 { return int64(img.owned) * pageSize }

// NumPages returns the number of pages covering the image's extent.
func (img *MemImage) NumPages() int { return len(img.pages) }

// Page returns page p's immutable backing bytes (always PageSize long).
// Callers must never write through the returned slice.
func (img *MemImage) Page(p int) []byte { return img.pages[p] }

// Watermarks returns the allocator state the image restores: the bump
// watermark and the high-water mark.
func (img *MemImage) Watermarks() (brk, hwm uint32) { return img.brk, img.hwm }

// NewMappedImage assembles an image over externally owned, immutable
// page storage — the zero-copy path by which internal/wire rebuilds
// snapshot images whose pages live in an mmap'd ladder file shared by
// every process on the host. Each page must be exactly PageSize bytes
// and must stay immutable and alive for the image's lifetime (COW
// restores only ever copy out of image pages, never write into them).
// The image owns none of the pages, so its SizeBytes is zero: mapped
// storage is not heap cost.
func NewMappedImage(pages [][]byte, brk, hwm uint32) (*MemImage, error) {
	if got, want := len(pages), pagesFor(hwm); got != want {
		return nil, fmt.Errorf("gpu: mapped image has %d pages, extent %d needs %d", got, hwm, want)
	}
	for p, pg := range pages {
		if len(pg) != pageSize {
			return nil, fmt.Errorf("gpu: mapped image page %d is %d bytes, want %d", p, len(pg), pageSize)
		}
	}
	return &MemImage{pages: pages, brk: brk, hwm: hwm}, nil
}

// Image captures the memory state for later SetImage restoration. Clean
// pages (unwritten since the last capture or restore) are shared with
// the image that already holds them; dirty pages are copied into arena
// storage and become the new identity of the live page.
func (m *Memory) Image() *MemImage {
	np := pagesFor(m.hwm)
	img := &MemImage{
		pages: make([][]byte, np),
		brk:   m.brk,
		hwm:   m.hwm,
	}
	for p := 0; p < np; p++ {
		if pg := m.src[p]; pg != nil {
			img.pages[p] = pg
			continue
		}
		pg := m.newArenaPage()
		lo, hi := m.pageBounds(p)
		copy(pg, m.data[lo:hi])
		img.pages[p] = pg
		m.src[p] = pg
		img.owned++
	}
	return img
}

// SetImage restores a previously captured image, clearing any bytes the
// current state touched beyond the image's extent, and enters replay
// mode (see Alloc); the fast-forward resume path leaves replay mode via
// EndReplay once the host program reaches live execution. Pages whose
// identity already matches the image are skipped, so restoring to a
// nearby rung costs only the pages that differ.
func (m *Memory) SetImage(img *MemImage) error {
	if int(img.hwm) > len(m.data) {
		return fmt.Errorf("gpu: memory image extent %d exceeds capacity %d", img.hwm, len(m.data))
	}
	np := len(img.pages)
	for p := 0; p < np; p++ {
		pg := img.pages[p]
		if samePage(m.src[p], pg) {
			m.pagesShared++
			continue
		}
		lo, hi := m.pageBounds(p)
		copy(m.data[lo:hi], pg)
		m.src[p] = pg
		m.pagesCopied++
	}
	// Pages the current state touched beyond the image's extent go back
	// to zero (image pages contain zeros past img.hwm by construction,
	// so only whole pages above the image's last page need clearing).
	for p, hp := np, pagesFor(m.hwm); p < hp; p++ {
		if samePage(m.src[p], zeroPage) {
			continue
		}
		lo, hi := m.pageBounds(p)
		clear(m.data[lo:hi])
		m.src[p] = zeroPage
	}
	m.brk = img.brk
	m.hwm = img.hwm
	m.replay = true
	m.rbrk = 0
	return nil
}

// RestorePageStats returns the cumulative number of pages SetImage
// copied versus skipped via identity match since construction. The
// fault-injection engine reads deltas around each restore for cost
// accounting.
func (m *Memory) RestorePageStats() (copied, shared int64) {
	return m.pagesCopied, m.pagesShared
}

// EndReplay leaves replay mode: subsequent allocations and stores apply
// to the restored state for real.
func (m *Memory) EndReplay() {
	m.replay = false
	m.rbrk = 0
}

// Reset zeroes all memory touched since construction and rewinds the
// allocator. Only dirty pages under the high-water mark are cleared,
// which keeps per-injection reset cost proportional to the pages the
// workload actually wrote.
func (m *Memory) Reset() {
	for p, hp := 0, pagesFor(m.hwm); p < hp; p++ {
		if samePage(m.src[p], zeroPage) {
			continue
		}
		lo, hi := m.pageBounds(p)
		clear(m.data[lo:hi])
		m.src[p] = zeroPage
	}
	m.brk = 0
	m.hwm = 0
	m.replay = false
	m.rbrk = 0
}

// check validates an access of size bytes at addr.
func (m *Memory) check(addr uint32, size int) error {
	if uint64(addr)+uint64(size) > uint64(len(m.data)) {
		return fmt.Errorf("gpu: invalid memory access addr=%#x size=%d capacity=%d", addr, size, len(m.data))
	}
	return nil
}

// Load32 reads a 32-bit word.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// Store32 writes a 32-bit word. Stores beyond the allocator watermark
// (reachable via fault-corrupted addresses that stay in capacity) raise
// the high-water mark, so Reset's cheap zeroing and snapshot images
// always cover every byte ever written.
func (m *Memory) Store32(addr uint32, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	if m.replay {
		return nil
	}
	m.dirty(addr, 4)
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	if end := addr + 4; end > m.hwm {
		m.hwm = end
	}
	return nil
}

// LoadF32 reads a float32.
func (m *Memory) LoadF32(addr uint32) (float32, error) {
	v, err := m.Load32(addr)
	return math.Float32frombits(v), err
}

// StoreF32 writes a float32.
func (m *Memory) StoreF32(addr uint32, v float32) error {
	return m.Store32(addr, math.Float32bits(v))
}

// WriteWords uploads a slice of 32-bit words starting at addr.
func (m *Memory) WriteWords(addr uint32, words []uint32) error {
	if err := m.check(addr, 4*len(words)); err != nil {
		return err
	}
	if m.replay {
		return nil
	}
	if len(words) == 0 {
		return nil
	}
	m.dirty(addr, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(m.data[addr+uint32(4*i):], w)
	}
	if end := addr + uint32(4*len(words)); end > m.hwm {
		m.hwm = end
	}
	return nil
}

// ReadWords downloads n 32-bit words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) ([]uint32, error) {
	if err := m.check(addr, 4*n); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(m.data[addr+uint32(4*i):])
	}
	return out, nil
}

// WriteFloats uploads a float32 slice starting at addr.
func (m *Memory) WriteFloats(addr uint32, vals []float32) error {
	if err := m.check(addr, 4*len(vals)); err != nil {
		return err
	}
	if m.replay {
		return nil
	}
	if len(vals) == 0 {
		return nil
	}
	m.dirty(addr, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(m.data[addr+uint32(4*i):], math.Float32bits(v))
	}
	if end := addr + uint32(4*len(vals)); end > m.hwm {
		m.hwm = end
	}
	return nil
}

// ReadFloats downloads n float32 values starting at addr.
func (m *Memory) ReadFloats(addr uint32, n int) ([]float32, error) {
	ws, err := m.ReadWords(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i, w := range ws {
		out[i] = math.Float32frombits(w)
	}
	return out, nil
}

// ReadBytes returns a copy of the byte range [addr, addr+size).
func (m *Memory) ReadBytes(addr uint32, size int) ([]byte, error) {
	if err := m.check(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, m.data[addr:])
	return out, nil
}

// AllocWords allocates space for and uploads the given words, returning
// the device address.
func (m *Memory) AllocWords(words []uint32) (uint32, error) {
	addr, err := m.Alloc(4 * len(words))
	if err != nil {
		return 0, err
	}
	return addr, m.WriteWords(addr, words)
}

// AllocFloats allocates space for and uploads the given floats, returning
// the device address.
func (m *Memory) AllocFloats(vals []float32) (uint32, error) {
	addr, err := m.Alloc(4 * len(vals))
	if err != nil {
		return 0, err
	}
	return addr, m.WriteFloats(addr, vals)
}

// AllocZero allocates a zeroed region of size bytes.
func (m *Memory) AllocZero(size int) (uint32, error) {
	return m.Alloc(size)
}
