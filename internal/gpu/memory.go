package gpu

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory models device global memory as a flat little-endian byte array
// with a bump allocator. All accesses are bounds-checked; a failed check
// aborts the launch and is classified as a DUE by the fault-injection
// engine, mirroring how GPGPU-Sim/Multi2Sim abort on wild accesses.
type Memory struct {
	data []byte
	brk  uint32 // bump-allocation watermark
	hwm  uint32 // high-water mark since last Reset (for cheap zeroing)

	// Replay mode (between Snapshot restore and fast-forward resume):
	// the host program re-executes allocations and uploads whose effects
	// the restored image already contains, so Alloc hands out addresses
	// from a shadow watermark without touching state and stores become
	// bounds-checked no-ops. Loads still read the restored image.
	replay bool
	rbrk   uint32
}

// memAlign is the allocation alignment in bytes.
const memAlign = 256

// NewMemory creates a device memory of the given size in bytes.
func NewMemory(size int) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory capacity in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Alloc reserves size bytes and returns the device address. Address 0 is
// never returned (the first allocation starts at memAlign) so that 0 can
// serve as a null pointer.
func (m *Memory) Alloc(size int) (uint32, error) {
	if size < 0 {
		return 0, fmt.Errorf("gpu: negative allocation size %d", size)
	}
	if m.replay {
		// Shadow allocation: the sequence of sizes is deterministic, so
		// replaying it from zero yields the addresses of the original
		// run without disturbing the restored allocator state.
		if m.rbrk == 0 {
			m.rbrk = memAlign
		}
		addr := m.rbrk
		sz := (uint32(size) + memAlign - 1) &^ (memAlign - 1)
		if uint64(addr)+uint64(sz) > uint64(len(m.data)) {
			return 0, fmt.Errorf("gpu: out of device memory (want %d bytes at %#x, capacity %d)", size, addr, len(m.data))
		}
		m.rbrk = addr + sz
		return addr, nil
	}
	if m.brk == 0 {
		m.brk = memAlign
	}
	addr := m.brk
	sz := (uint32(size) + memAlign - 1) &^ (memAlign - 1)
	if uint64(addr)+uint64(sz) > uint64(len(m.data)) {
		return 0, fmt.Errorf("gpu: out of device memory (want %d bytes at %#x, capacity %d)", size, addr, len(m.data))
	}
	m.brk = addr + sz
	if m.brk > m.hwm {
		m.hwm = m.brk
	}
	return addr, nil
}

// MemImage is a compact, immutable copy of a Memory's state: the
// high-water-mark prefix of the data plus the allocator watermarks.
// Everything beyond the prefix is zero by construction (snapshots are
// only taken of runs that started from power-on state).
type MemImage struct {
	data []byte
	brk  uint32
	hwm  uint32
}

// SizeBytes returns the image's storage footprint.
func (img *MemImage) SizeBytes() int64 { return int64(len(img.data)) }

// Image captures the memory state for later SetImage restoration.
func (m *Memory) Image() *MemImage {
	return &MemImage{
		data: append([]byte(nil), m.data[:m.hwm]...),
		brk:  m.brk,
		hwm:  m.hwm,
	}
}

// SetImage restores a previously captured image, clearing any bytes the
// current state touched beyond the image's extent, and enters replay
// mode (see Alloc); the fast-forward resume path leaves replay mode via
// EndReplay once the host program reaches live execution.
func (m *Memory) SetImage(img *MemImage) error {
	if int(img.hwm) > len(m.data) {
		return fmt.Errorf("gpu: memory image extent %d exceeds capacity %d", img.hwm, len(m.data))
	}
	if m.hwm > img.hwm {
		clear(m.data[img.hwm:m.hwm])
	}
	copy(m.data[:img.hwm], img.data)
	m.brk = img.brk
	m.hwm = img.hwm
	m.replay = true
	m.rbrk = 0
	return nil
}

// EndReplay leaves replay mode: subsequent allocations and stores apply
// to the restored state for real.
func (m *Memory) EndReplay() {
	m.replay = false
	m.rbrk = 0
}

// Reset zeroes all memory touched since construction and rewinds the
// allocator. Only the high-water-mark prefix is cleared, which keeps
// per-injection reset cost proportional to the workload footprint.
func (m *Memory) Reset() {
	clear(m.data[:m.hwm])
	m.brk = 0
	m.hwm = 0
	m.replay = false
	m.rbrk = 0
}

// check validates an access of size bytes at addr.
func (m *Memory) check(addr uint32, size int) error {
	if uint64(addr)+uint64(size) > uint64(len(m.data)) {
		return fmt.Errorf("gpu: invalid memory access addr=%#x size=%d capacity=%d", addr, size, len(m.data))
	}
	return nil
}

// Load32 reads a 32-bit word.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if err := m.check(addr, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// Store32 writes a 32-bit word. Stores beyond the allocator watermark
// (reachable via fault-corrupted addresses that stay in capacity) raise
// the high-water mark, so Reset's cheap zeroing and snapshot images
// always cover every byte ever written.
func (m *Memory) Store32(addr uint32, v uint32) error {
	if err := m.check(addr, 4); err != nil {
		return err
	}
	if m.replay {
		return nil
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	if end := addr + 4; end > m.hwm {
		m.hwm = end
	}
	return nil
}

// LoadF32 reads a float32.
func (m *Memory) LoadF32(addr uint32) (float32, error) {
	v, err := m.Load32(addr)
	return math.Float32frombits(v), err
}

// StoreF32 writes a float32.
func (m *Memory) StoreF32(addr uint32, v float32) error {
	return m.Store32(addr, math.Float32bits(v))
}

// WriteWords uploads a slice of 32-bit words starting at addr.
func (m *Memory) WriteWords(addr uint32, words []uint32) error {
	if err := m.check(addr, 4*len(words)); err != nil {
		return err
	}
	if m.replay {
		return nil
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(m.data[addr+uint32(4*i):], w)
	}
	if end := addr + uint32(4*len(words)); end > m.hwm {
		m.hwm = end
	}
	return nil
}

// ReadWords downloads n 32-bit words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) ([]uint32, error) {
	if err := m.check(addr, 4*n); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(m.data[addr+uint32(4*i):])
	}
	return out, nil
}

// WriteFloats uploads a float32 slice starting at addr.
func (m *Memory) WriteFloats(addr uint32, vals []float32) error {
	if err := m.check(addr, 4*len(vals)); err != nil {
		return err
	}
	if m.replay {
		return nil
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(m.data[addr+uint32(4*i):], math.Float32bits(v))
	}
	if end := addr + uint32(4*len(vals)); end > m.hwm {
		m.hwm = end
	}
	return nil
}

// ReadFloats downloads n float32 values starting at addr.
func (m *Memory) ReadFloats(addr uint32, n int) ([]float32, error) {
	ws, err := m.ReadWords(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i, w := range ws {
		out[i] = math.Float32frombits(w)
	}
	return out, nil
}

// ReadBytes returns a copy of the byte range [addr, addr+size).
func (m *Memory) ReadBytes(addr uint32, size int) ([]byte, error) {
	if err := m.check(addr, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, m.data[addr:])
	return out, nil
}

// AllocWords allocates space for and uploads the given words, returning
// the device address.
func (m *Memory) AllocWords(words []uint32) (uint32, error) {
	addr, err := m.Alloc(4 * len(words))
	if err != nil {
		return 0, err
	}
	return addr, m.WriteWords(addr, words)
}

// AllocFloats allocates space for and uploads the given floats, returning
// the device address.
func (m *Memory) AllocFloats(vals []float32) (uint32, error) {
	addr, err := m.Alloc(4 * len(vals))
	if err != nil {
		return 0, err
	}
	return addr, m.WriteFloats(addr, vals)
}

// AllocZero allocates a zeroed region of size bytes.
func (m *Memory) AllocZero(size int) (uint32, error) {
	return m.Alloc(size)
}
