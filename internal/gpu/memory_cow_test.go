package gpu

import (
	"math/rand"
	"testing"
)

// flatModel is a reference implementation of the image semantics the COW
// Memory must preserve: full deep copies, full restores.
type flatModel struct {
	data []byte
	brk  uint32
	hwm  uint32
}

func (f *flatModel) store32(addr uint32, v uint32) {
	f.data[addr] = byte(v)
	f.data[addr+1] = byte(v >> 8)
	f.data[addr+2] = byte(v >> 16)
	f.data[addr+3] = byte(v >> 24)
	if end := addr + 4; end > f.hwm {
		f.hwm = end
	}
}

func (f *flatModel) image() *flatModel {
	return &flatModel{data: append([]byte(nil), f.data...), brk: f.brk, hwm: f.hwm}
}

func (f *flatModel) restore(img *flatModel) {
	copy(f.data, img.data)
	f.brk = img.brk
	f.hwm = img.hwm
}

// TestMemoryCOWDifferential drives the COW Memory and the flat reference
// model through the same randomized store/capture/restore schedule and
// demands byte-identical visible state after every step.
func TestMemoryCOWDifferential(t *testing.T) {
	const size = 10 * pageSize
	rng := rand.New(rand.NewSource(7))
	m := NewMemory(size)
	ref := &flatModel{data: make([]byte, size)}
	if _, err := m.Alloc(3 * pageSize); err != nil {
		t.Fatal(err)
	}
	ref.brk, ref.hwm = m.brk, m.hwm

	type pair struct {
		img *MemImage
		ref *flatModel
	}
	var snaps []pair
	checkAll := func(step int) {
		t.Helper()
		for addr := uint32(0); addr < size; addr += 4 {
			got, err := m.Load32(addr)
			if err != nil {
				t.Fatalf("step %d: load %#x: %v", step, addr, err)
			}
			want := uint32(ref.data[addr]) | uint32(ref.data[addr+1])<<8 |
				uint32(ref.data[addr+2])<<16 | uint32(ref.data[addr+3])<<24
			if got != want {
				t.Fatalf("step %d: addr %#x: got %#x want %#x", step, addr, got, want)
			}
		}
		if m.brk != ref.brk || m.hwm != ref.hwm {
			t.Fatalf("step %d: watermarks (brk=%d hwm=%d) want (brk=%d hwm=%d)",
				step, m.brk, m.hwm, ref.brk, ref.hwm)
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // store somewhere, sometimes straddling a page edge
			addr := uint32(rng.Intn(size - 4))
			if rng.Intn(4) == 0 {
				addr = uint32(rng.Intn(9)+1)*pageSize - 2 // spans two pages
			}
			v := rng.Uint32()
			if err := m.Store32(addr, v); err != nil {
				t.Fatal(err)
			}
			ref.store32(addr, v)
		case op < 8: // capture
			snaps = append(snaps, pair{img: m.Image(), ref: ref.image()})
		default: // restore a random prior snapshot
			if len(snaps) == 0 {
				continue
			}
			p := snaps[rng.Intn(len(snaps))]
			if err := m.SetImage(p.img); err != nil {
				t.Fatal(err)
			}
			m.EndReplay()
			ref.restore(p.ref)
		}
		checkAll(step)
	}
}

// TestMemoryCOWPageSharing pins the capture economics: pages untouched
// between two captures are shared (same backing array), and SizeBytes
// charges only freshly copied pages.
func TestMemoryCOWPageSharing(t *testing.T) {
	m := NewMemory(8 * pageSize)
	if _, err := m.Alloc(4 * pageSize); err != nil {
		t.Fatal(err)
	}
	for addr := uint32(0); addr < 4*pageSize; addr += 4 {
		if err := m.Store32(addr, addr^0x5a5a5a5a); err != nil {
			t.Fatal(err)
		}
	}
	img1 := m.Image()
	if img1.owned != 4 {
		t.Fatalf("first capture owned %d pages, want 4", img1.owned)
	}
	// Dirty exactly one page, capture again.
	if err := m.Store32(2*pageSize+16, 1); err != nil {
		t.Fatal(err)
	}
	img2 := m.Image()
	if img2.owned != 1 {
		t.Fatalf("second capture owned %d pages, want 1", img2.owned)
	}
	for p := 0; p < 4; p++ {
		shared := samePage(img1.pages[p], img2.pages[p])
		if p == 2 && shared {
			t.Fatalf("page %d dirtied between captures is still shared", p)
		}
		if p != 2 && !shared {
			t.Fatalf("clean page %d was copied instead of shared", p)
		}
	}
	if img2.SizeBytes() != pageSize {
		t.Fatalf("img2.SizeBytes() = %d, want %d", img2.SizeBytes(), pageSize)
	}
}

// TestMemoryCOWRestoreSkipsCleanPages pins the restore economics: going
// back to an image after touching one page copies only that page.
func TestMemoryCOWRestoreSkipsCleanPages(t *testing.T) {
	m := NewMemory(8 * pageSize)
	if _, err := m.Alloc(6 * pageSize); err != nil {
		t.Fatal(err)
	}
	for addr := uint32(0); addr < 6*pageSize; addr += 64 {
		if err := m.Store32(addr, addr*3+1); err != nil {
			t.Fatal(err)
		}
	}
	img := m.Image()
	c0, s0 := m.RestorePageStats()

	if err := m.Store32(5*pageSize, 0xdead); err != nil {
		t.Fatal(err)
	}
	if err := m.SetImage(img); err != nil {
		t.Fatal(err)
	}
	m.EndReplay()
	c1, s1 := m.RestorePageStats()
	if copied := c1 - c0; copied != 1 {
		t.Fatalf("restore copied %d pages, want 1", copied)
	}
	// Alloc starts at memAlign, so the 6-page allocation spans 7 pages.
	if shared := s1 - s0; shared != 6 {
		t.Fatalf("restore skipped %d pages, want 6", shared)
	}
	got, err := m.Load32(5 * pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32(5*pageSize)*3 + 1; got != want {
		t.Fatalf("restored word = %#x, want %#x", got, want)
	}
}

// TestMemoryCOWRestoreClearsAboveExtent pins the shrink path: restoring
// an image with a smaller extent zeroes everything the current state
// touched above it, including fault-scribbled pages far past brk.
func TestMemoryCOWRestoreClearsAboveExtent(t *testing.T) {
	m := NewMemory(8 * pageSize)
	if _, err := m.Alloc(pageSize); err != nil {
		t.Fatal(err)
	}
	if err := m.Store32(256, 42); err != nil {
		t.Fatal(err)
	}
	img := m.Image()
	// Scribble far above the image extent (fault-corrupted address).
	if err := m.Store32(6*pageSize+8, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if err := m.SetImage(img); err != nil {
		t.Fatal(err)
	}
	m.EndReplay()
	if got, _ := m.Load32(6*pageSize + 8); got != 0 {
		t.Fatalf("page above restored extent not cleared: %#x", got)
	}
	if got, _ := m.Load32(256); got != 42 {
		t.Fatalf("restored word = %d, want 42", got)
	}
	if m.hwm != img.hwm {
		t.Fatalf("hwm = %d, want %d", m.hwm, img.hwm)
	}
}
