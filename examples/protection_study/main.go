// protection_study: the decision-making use of EPF from the paper's
// conclusion — "architects can quantify the effectiveness of a hardware
// based error protection technique … along with a performance cost."
//
// It measures matrixMul on the GTX 480 with fault injection (separating
// SDC from DUE outcomes per structure), then evaluates EPF under four
// protection configurations: unprotected, parity on the register file,
// SECDED on the register file, and SECDED on both structures.
//
//	go run ./examples/protection_study [-n 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/chips"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/protect"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	inj := flag.Int("n", 400, "fault injections per structure")
	flag.Parse()

	chip := chips.GeForceGTX480()
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		log.Fatal(err)
	}

	// Measure both structures, splitting SDC and DUE rates.
	study := protect.Study{
		ClockGHz:      chip.ClockGHz,
		RawFITPerMbit: metrics.DefaultRawFITPerMbit,
	}
	for _, st := range []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory} {
		res, err := finject.Run(finject.Campaign{
			Chip: chip, Benchmark: bench, Structure: st,
			Injections: *inj, Seed: 31,
		})
		if err != nil {
			log.Fatal(err)
		}
		n := float64(res.Injections)
		study.Cycles = res.GoldenStats.Cycles
		study.Structures = append(study.Structures, protect.StructureMeasurement{
			Structure: st,
			SDCAVF:    float64(res.Outcomes[gpu.OutcomeSDC]) / n,
			DUEAVF:    float64(res.Outcomes[gpu.OutcomeDUE]+res.Outcomes[gpu.OutcomeTimeout]) / n,
			Bits:      chip.StructBits(st),
		})
		fmt.Printf("measured %-14s SDC-AVF %.2f%%  DUE-AVF %.2f%%\n",
			st, 100*float64(res.Outcomes[gpu.OutcomeSDC])/n,
			100*float64(res.Outcomes[gpu.OutcomeDUE]+res.Outcomes[gpu.OutcomeTimeout])/n)
	}

	configs := []struct {
		name string
		cfgs []protect.Config
	}{
		{"unprotected", nil},
		{"parity RF", []protect.Config{{Structure: gpu.RegisterFile, Scheme: protect.Parity, PerfOverhead: -1}}},
		{"secded RF", []protect.Config{{Structure: gpu.RegisterFile, Scheme: protect.SECDED, PerfOverhead: -1}}},
		{"secded RF+LM", []protect.Config{
			{Structure: gpu.RegisterFile, Scheme: protect.SECDED, PerfOverhead: -1},
			{Structure: gpu.LocalMemory, Scheme: protect.SECDED, PerfOverhead: -1},
		}},
	}

	fmt.Printf("\n%-14s %12s %10s %10s %10s %12s\n",
		"config", "EPF", "SDC FIT", "DUE FIT", "slowdown", "extra bits")
	for _, c := range configs {
		res, err := protect.Evaluate(study, c.cfgs)
		if err != nil {
			log.Fatal(err)
		}
		epf := fmt.Sprintf("%.3e", res.EPF)
		if res.EPF == 0 {
			epf = "inf"
		}
		fmt.Printf("%-14s %12s %10.1f %10.1f %9.1f%% %12d\n",
			c.name, epf, res.SDCFIT, res.DUEFIT, 100*res.Slowdown, res.ExtraBits)
	}
	fmt.Println("\nParity trades silent corruptions for detected errors at ~1% cost;")
	fmt.Println("SECDED removes single-bit failures entirely for ~5% performance and 22% storage.")
}
