// occupancy_sweep: quantifies the paper's "red line" observation — the
// strong correlation between a structure's occupancy and its AVF.
//
// It measures the ACE AVF and the occupancy of every benchmark on one
// chip (fast: one traced run per benchmark, no fault injection) and
// reports the Pearson correlation coefficient across the suite for both
// the register file and the local memory.
//
//	go run ./examples/occupancy_sweep [-chip "Quadro FX 5600"]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ace"
	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/gpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	chipName := flag.String("chip", "Quadro FX 5600", "chip to sweep")
	flag.Parse()
	chip, err := chips.ByName(*chipName)
	if err != nil {
		log.Fatal(err)
	}

	var regAVFs, regOccs, locAVFs, locOccs []float64
	fmt.Printf("%s: ACE AVF vs occupancy across the suite\n\n", chip.Name)
	fmt.Printf("%-11s %10s %10s %10s %10s\n", "benchmark", "RF AVF", "RF occ", "LM AVF", "LM occ")
	for _, b := range workloads.All() {
		d, err := devices.New(chip)
		if err != nil {
			log.Fatal(err)
		}
		hp, err := b.New(chip.Vendor)
		if err != nil {
			log.Fatal(err)
		}
		regAVF, locAVF, st, err := ace.Measure(d, hp)
		if err != nil {
			log.Fatal(err)
		}
		regOcc := st.Occupancy(gpu.RegisterFile, int64(chip.Units)*int64(chip.RegsPerUnit))
		locOcc := st.Occupancy(gpu.LocalMemory, int64(chip.Units)*int64(chip.LocalBytesPerUnit))
		fmt.Printf("%-11s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			b.Name, 100*regAVF, 100*regOcc, 100*locAVF, 100*locOcc)
		regAVFs = append(regAVFs, regAVF)
		regOccs = append(regOccs, regOcc)
		if b.UsesLocal {
			locAVFs = append(locAVFs, locAVF)
			locOccs = append(locOccs, locOcc)
		}
	}

	rReg, err := stats.PearsonCorrelation(regOccs, regAVFs)
	if err != nil {
		log.Fatal(err)
	}
	rLoc, err := stats.PearsonCorrelation(locOccs, locAVFs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPearson correlation (occupancy vs AVF):\n")
	fmt.Printf("  register file: r = %+.3f\n", rReg)
	fmt.Printf("  local memory:  r = %+.3f  (7 shared-memory benchmarks)\n", rLoc)
}
