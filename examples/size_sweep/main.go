// size_sweep: the paper's resource-occupancy factor in isolation.
//
// The same kernel at growing problem sizes occupies more of the chip's
// register file (more resident blocks), and the AVF follows. This sweep
// runs vectoradd from 1K to 32K elements on one chip and prints
// occupancy next to the ACE AVF and a small FI campaign's AVF.
//
//	go run ./examples/size_sweep [-chip "GeForce GTX 480"] [-n 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/ace"
	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	chipName := flag.String("chip", "GeForce GTX 480", "chip to sweep")
	inj := flag.Int("n", 200, "fault injections per size")
	flag.Parse()
	chip, err := chips.ByName(*chipName)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: vectoradd size sweep (register file)\n\n", chip.Name)
	fmt.Printf("%8s %10s %10s %10s %10s\n", "elems", "occupancy", "AVF-ACE", "AVF-FI", "cycles")
	var occs, avfs []float64
	for _, n := range []int{1024, 2048, 4096, 8192, 16384, 32768} {
		bench := workloads.SizedBenchmark(n)
		res, err := finject.Run(finject.Campaign{
			Chip: chip, Benchmark: bench, Structure: gpu.RegisterFile,
			Injections: *inj, Seed: uint64(n),
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := devices.New(chip)
		if err != nil {
			log.Fatal(err)
		}
		hp, err := bench.New(chip.Vendor)
		if err != nil {
			log.Fatal(err)
		}
		regACE, _, st, err := ace.Measure(d, hp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %9.2f%% %9.2f%% %9.2f%% %10d\n",
			n, 100*res.Occupancy, 100*regACE, 100*res.AVF(), st.Cycles)
		occs = append(occs, res.Occupancy)
		avfs = append(avfs, regACE)
	}
	r, err := stats.PearsonCorrelation(occs, avfs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPearson correlation over the sweep: r = %+.3f\n", r)
}
