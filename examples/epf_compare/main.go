// epf_compare: the paper's combined performance-reliability metric.
//
// AVF alone cannot compare chips with different clocks, structure sizes
// and microarchitectures. This example computes EPF (Executions Per
// Failure = EIT / FIT_GPU) for the reduction benchmark on all four GPUs,
// showing how the metric folds execution time, structure capacity and
// measured AVF into a single decision-making number (Fig. 3).
//
//	go run ./examples/epf_compare
package main

import (
	"fmt"
	"log"

	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench, err := workloads.ByName("reduction")
	if err != nil {
		log.Fatal(err)
	}
	data, err := core.FigureEPF(core.Options{
		Injections: 400,
		Seed:       23,
		Benchmarks: []*workloads.Benchmark{bench},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reduction: Executions Per Failure by chip")
	fmt.Printf("\n%-16s %12s %12s %9s %9s\n", "chip", "EPF", "exec (s)", "AVF-RF", "AVF-LM")
	for ci, name := range data.ChipNames {
		r := data.Rows[0][ci]
		fmt.Printf("%-16s %12.3e %12.3e %8.2f%% %8.2f%%\n",
			name, r.EPF, r.Seconds, 100*r.RegAVF, 100*r.LocalAVF)
	}
	_ = chips.Evaluated()
	fmt.Println("\nLarger EPF = more correct executions between failures.")
}
