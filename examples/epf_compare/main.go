// epf_compare: the paper's combined performance-reliability metric.
//
// AVF alone cannot compare chips with different clocks, structure sizes
// and microarchitectures. This example computes EPF (Executions Per
// Failure = EIT / FIT_GPU) for the reduction benchmark on all four GPUs,
// showing how the metric folds execution time, structure capacity and
// measured AVF into a single decision-making number (Fig. 3).
//
// It also demonstrates the campaign orchestration layer: Fig. 1's
// register-file cells are measured first, and because both figure drivers
// share one scheduler, the EPF computation reuses them from the store
// instead of re-running half its campaigns.
//
//	go run ./examples/epf_compare
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench, err := workloads.ByName("reduction")
	if err != nil {
		log.Fatal(err)
	}
	sched := campaign.New(campaign.Config{})
	opts := core.Options{
		Injections: 400,
		Seed:       23,
		Benchmarks: []*workloads.Benchmark{bench},
		Scheduler:  sched,
	}

	// Fig. 1 slice: register-file AVF for this benchmark on all chips.
	fig, err := core.FigureRegisterFile(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reduction: register-file AVF by chip (Fig. 1 slice)")
	for ci, name := range fig.ChipNames {
		fmt.Printf("  %-16s AVF(FI) %6.2f%%\n", name, 100*fig.Cells[0][ci].AVFFI)
	}

	// Fig. 3: the register-file campaigns above are reused from the
	// scheduler's store; only the local-memory campaigns run now.
	data, err := core.FigureEPF(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreduction: Executions Per Failure by chip")
	fmt.Printf("\n%-16s %12s %12s %9s %9s\n", "chip", "EPF", "exec (s)", "AVF-RF", "AVF-LM")
	for ci, name := range data.ChipNames {
		r := data.Rows[0][ci]
		fmt.Printf("%-16s %12.3e %12.3e %8.2f%% %8.2f%%\n",
			name, r.EPF, r.Seconds, 100*r.RegAVF, 100*r.LocalAVF)
	}
	st := sched.Stats()
	fmt.Printf("\ncampaigns executed %d, served from store %d (Fig. 3 reused Fig. 1's cells)\n",
		st.Runs, st.Hits+st.Joins)
	fmt.Println("Larger EPF = more correct executions between failures.")
}
