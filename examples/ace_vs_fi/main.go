// ace_vs_fi: the paper's methodology comparison on one benchmark.
//
// For matrixMul on all four GPUs it measures the AVF of both target
// structures with statistical fault injection and with ACE analysis, and
// prints the per-structure gap — reproducing the paper's observation that
// ACE is a cheap, accurate substitute for fault injection on the local
// memory, while it is conservative for the register file.
//
//	go run ./examples/ace_vs_fi
package main

import (
	"fmt"
	"log"

	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench, err := workloads.ByName("matrixMul")
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{Injections: 400, Seed: 11}

	fmt.Printf("matrixMul: AVF by methodology (%d injections per FI campaign)\n\n", opts.Injections)
	fmt.Printf("%-16s %-14s %9s %9s %10s\n", "chip", "structure", "AVF-FI", "AVF-ACE", "ACE-FI gap")
	for _, chip := range chips.Evaluated() {
		for _, st := range []gpu.Structure{gpu.RegisterFile, gpu.LocalMemory} {
			cell, err := core.MeasureCell(chip, bench, st, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %-14s %8.2f%% %8.2f%% %+9.2f%%\n",
				chip.Name, st, 100*cell.AVFFI, 100*cell.AVFACE,
				100*(cell.AVFACE-cell.AVFFI))
		}
	}
	fmt.Println("\nA positive gap means ACE analysis overestimates the FI-measured AVF.")
}
