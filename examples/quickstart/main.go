// Quickstart: measure the soft-error vulnerability of one benchmark on
// one GPU with both of the paper's methodologies.
//
// It runs vectoradd on the simulated GeForce GTX 480, injects 300 random
// single-bit register-file faults, classifies each outcome against the
// golden run, and compares the resulting AVF with a single-pass ACE
// lifetime analysis.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ace"
	"repro/internal/chips"
	"repro/internal/devices"
	"repro/internal/finject"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	chip := chips.GeForceGTX480()
	bench, err := workloads.ByName("vectoradd")
	if err != nil {
		log.Fatal(err)
	}

	// Methodology 1: statistical fault injection (what GUFI does).
	res, err := finject.Run(finject.Campaign{
		Chip:       chip,
		Benchmark:  bench,
		Structure:  gpu.RegisterFile,
		Injections: 300,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, err := res.AVFInterval(0.99)
	if err != nil {
		log.Fatal(err)
	}

	// Methodology 2: ACE lifetime analysis on one traced run.
	d, err := devices.New(chip)
	if err != nil {
		log.Fatal(err)
	}
	hp, err := bench.New(chip.Vendor)
	if err != nil {
		log.Fatal(err)
	}
	regACE, _, st, err := ace.Measure(d, hp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s running %s (register file)\n", chip.Name, bench.Name)
	fmt.Printf("  golden run:   %d cycles, %d warp instructions\n", st.Cycles, st.Instructions)
	fmt.Printf("  occupancy:    %.2f%%\n", 100*res.Occupancy)
	fmt.Printf("  AVF by FI:    %.2f%%  (99%% CI [%.2f%%, %.2f%%], %d injections)\n",
		100*res.AVF(), 100*lo, 100*hi, res.Injections)
	fmt.Printf("  AVF by ACE:   %.2f%%  (single traced run)\n", 100*regACE)
	fmt.Printf("  outcomes:     masked=%d sdc=%d due=%d timeout=%d\n",
		res.Outcomes[gpu.OutcomeMasked], res.Outcomes[gpu.OutcomeSDC],
		res.Outcomes[gpu.OutcomeDUE], res.Outcomes[gpu.OutcomeTimeout])
}
