// spec_sweep: experiments as data. The protection what-if sweep in
// protection_whatif.json — a scenario the figure drivers never offered —
// runs end to end from its JSON spec: a chips x benchmarks x structures
// FI grid, per-cell FIT, the EPF metric of Fig. 3, and four protection
// configurations (unprotected, parity on the register file, SECDED on
// the register file, SECDED everywhere) evaluated on the measured
// SDC/DUE splits.
//
// The same file also runs through the other surfaces unchanged:
//
//	go run ./examples/spec_sweep [-n 60]
//	go run ./cmd/figures -spec examples/spec_sweep/protection_whatif.json
//	curl -sN -X POST localhost:8080/v1/experiments \
//	     --data-binary @examples/spec_sweep/protection_whatif.json
package main

import (
	"context"
	_ "embed"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiment"
	"repro/internal/report"
)

//go:embed protection_whatif.json
var specJSON []byte

func main() {
	log.SetFlags(0)
	inj := flag.Int("n", 0, "override the spec's injections per cell (0 = as written)")
	flag.Parse()

	spec, err := experiment.ParseBytes(specJSON)
	if err != nil {
		log.Fatal(err)
	}
	if *inj > 0 {
		spec.Injections = *inj
	}

	runner := &experiment.Runner{
		OnCell: func(p experiment.Progress) {
			fmt.Fprintf(os.Stderr, "cell %d/%d %s\n", p.Done, p.Total, p.Spec)
		},
	}
	res, err := runner.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := report.WriteExperiment(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvery row above came from one JSON file — add a scenario by editing")
	fmt.Println("the spec, not the code; POST the same file to a fiserver to run it there.")
}
