// Package repro is a from-scratch Go reproduction of "Microarchitecture
// Level Reliability Comparison of Modern GPU Designs: First Findings"
// (Vallero, Di Carlo, Tselonis, Gizopoulos — ISPASS 2017).
//
// The root package holds the benchmark harness that regenerates the
// paper's three figures (see bench_test.go); the system itself lives in
// the internal packages:
//
//   - internal/nvsim + internal/sass: NVIDIA SIMT simulator and SASS-like
//     ISA (the GUFI substrate, standing in for GPGPU-Sim 3.2.2);
//   - internal/amdsim + internal/siasm: AMD Southern Islands simulator
//     and SI-like ISA (the SIFI substrate, standing in for Multi2Sim 4.2);
//   - internal/workloads: the 10-benchmark suite in both ISA dialects;
//   - internal/finject, internal/ace: the two reliability methodologies;
//   - internal/metrics, internal/protect: AVF/FIT/EIT/EPF and protection
//     what-if analysis;
//   - internal/core, internal/report: figure-level experiment drivers.
//
// See README.md for usage, DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
